package upcall

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// The wire protocol is length-prefixed frames: a 4-byte big-endian payload
// length followed by a gob-encoded envelope. Each frame is encoded and
// decoded independently (no shared gob stream state), so a torn frame or a
// decode error poisons nothing beyond its own connection, responses can be
// written out of order under pipelining, and a reader always knows exactly
// how many bytes to consume or discard. The length prefix is validated
// against MaxFrame before any allocation — a corrupt or hostile header
// cannot balloon memory.

// DefaultMaxFrame bounds one frame's payload. Upcall requests and responses
// are small (paths, tokens, scalars); 1 MiB leaves two orders of magnitude
// of headroom while still rejecting garbage headers immediately.
const DefaultMaxFrame = 1 << 20

// envelope is the gob frame body. Seq correlates a response to its request
// on one connection: the client rejects (and retires the connection on) any
// response whose Seq does not match the request it just sent, so a stale
// response from an earlier timed-out request can never be mis-delivered.
type envelope struct {
	Seq  uint64
	Req  Request
	Resp Response
	// Err carries a Service-level error (the daemon answered with an
	// error). Retryable marks transient server conditions — overload,
	// draining — that the client may safely retry; everything else is
	// permanent.
	Err       string
	Retryable bool
	// TraceID/SpanID propagate the client's trace context so the daemon can
	// stitch its spans under the request's wire span. Optional by
	// construction: gob omits zero-valued fields on encode and ignores
	// unknown fields on decode, so an old peer on either end of the
	// connection simply sees (or sends) an untraced request — version skew
	// is safe in both directions (tested in trace_test.go).
	TraceID uint64
	SpanID  uint32
}

// writeFrame encodes and writes one frame. The payload is staged in a
// buffer so the length prefix and body go out in a single Write (one
// syscall, and no torn header on a concurrent writer bug).
func writeFrame(w io.Writer, maxFrame int, e *envelope) error {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return fmt.Errorf("upcall: encode frame: %w", err)
	}
	b := buf.Bytes()
	n := len(b) - 4
	if n > maxFrame {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	_, err := w.Write(b)
	return err
}

// readFrame reads and decodes one frame, rejecting oversized payloads
// before allocating for them.
func readFrame(r io.Reader, maxFrame int, e *envelope) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(maxFrame) {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	return decodeEnvelope(payload, e)
}

// decodeEnvelope decodes one frame payload already read off the wire.
func decodeEnvelope(payload []byte, e *envelope) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(e); err != nil {
		return fmt.Errorf("upcall: decode frame: %w", err)
	}
	return nil
}
