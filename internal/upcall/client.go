package upcall

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"datalinks/internal/metrics"
	"datalinks/internal/obs"
	"datalinks/internal/retry"
)

// DialFunc opens one transport connection. Injectable for tests and for
// the Chaos fault injector.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

// netDial is the production DialFunc.
func netDial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// ClientConfig tunes the resilient upcall client. The zero value gets
// production defaults.
type ClientConfig struct {
	// PoolSize bounds the connection pool (<= 0: default 4). Each pooled
	// connection carries one request at a time; concurrency beyond the
	// pool size queues on connection checkout.
	PoolSize int
	// DialTimeout bounds one connection attempt (<= 0: default 2s).
	DialTimeout time.Duration
	// OpTimeout is the overall per-op deadline applied by Upcall (the
	// context-free entry point) across all retry attempts (<= 0: default
	// 5s). UpcallCtx callers bring their own deadline instead.
	OpTimeout time.Duration
	// AttemptTimeout bounds one attempt's I/O — write the request, read
	// the response (<= 0: default 1s). A lost reply therefore costs one
	// attempt, not the whole op budget.
	AttemptTimeout time.Duration
	// MaxFrame bounds one frame's payload (<= 0: DefaultMaxFrame).
	MaxFrame int
	// Retry paces the attempts: capped exponential backoff with full
	// jitter. Zero value = retry defaults (4 attempts, 2ms..250ms).
	Retry retry.Policy
	// Breaker configures the circuit breaker (nil: breaker defaults).
	Breaker *retry.BreakerConfig
	// DisableBreaker turns the circuit breaker off entirely.
	DisableBreaker bool
	// Metrics receives upcall.retries / upcall.giveups /
	// upcall.breaker_open and the pool counters (nil: private registry).
	Metrics *metrics.Registry
	// Dial is injectable for tests (nil: TCP dial).
	Dial DialFunc
	// Chaos, when set, wraps Dial so every connection injects faults
	// (drops, delays, resets, partitions) deterministically.
	Chaos *Chaos
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 5 * time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Dial == nil {
		c.Dial = netDial
	}
	if c.Chaos != nil {
		c.Dial = c.Chaos.WrapDial(c.Dial)
	}
	return c
}

// clientConn is one pooled connection.
type clientConn struct {
	conn net.Conn
	r    *bufio.Reader
}

// Client is a fault-tolerant Service talking to a remote Server over a
// pool of TCP connections. Transport faults retire the connection they
// happened on (no state ever leaks into the next request) and are retried
// with capped exponential backoff under the per-op deadline; repeated
// failures open the circuit breaker, which fails fast and half-opens after
// a cooldown.
type Client struct {
	addr     string
	cfg      ClientConfig
	classify retry.Classifier
	breaker  *retry.Breaker
	idle     chan *clientConn
	slots    chan struct{} // bounds total live connections
	seq      atomic.Uint64

	mu     sync.Mutex
	conns  map[*clientConn]struct{}
	closed bool

	ctr clientCounters
}

type clientCounters struct {
	retries     *metrics.Counter
	giveups     *metrics.Counter
	breakerOpen *metrics.Counter
	dials       *metrics.Counter
	retired     *metrics.Counter
}

// Dial connects to a Server with default resilience settings. It dials one
// connection eagerly so an unreachable daemon fails fast.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig connects to a Server with explicit settings.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	c := &Client{
		addr:  addr,
		cfg:   cfg,
		idle:  make(chan *clientConn, cfg.PoolSize),
		slots: make(chan struct{}, cfg.PoolSize),
		conns: make(map[*clientConn]struct{}),
		ctr: clientCounters{
			retries:     cfg.Metrics.Counter("upcall.retries"),
			giveups:     cfg.Metrics.Counter("upcall.giveups"),
			breakerOpen: cfg.Metrics.Counter("upcall.breaker_open"),
			dials:       cfg.Metrics.Counter("upcall.conns_dialed"),
			retired:     cfg.Metrics.Counter("upcall.conns_retired"),
		},
	}
	c.classify = defaultClassify
	if !cfg.DisableBreaker {
		bcfg := retry.BreakerConfig{}
		if cfg.Breaker != nil {
			bcfg = *cfg.Breaker
		}
		userOnOpen := bcfg.OnOpen
		bcfg.OnOpen = func() {
			c.ctr.breakerOpen.Inc()
			if userOnOpen != nil {
				userOnOpen()
			}
		}
		c.breaker = retry.NewBreaker(bcfg)
	}
	// Eager first connection: an unreachable daemon fails the Dial, not
	// the first upcall.
	c.slots <- struct{}{}
	cc, err := c.dial()
	if err != nil {
		<-c.slots
		return nil, err
	}
	c.idle <- cc
	return c, nil
}

// defaultClassify is the upcall error classifier: connection-scoped faults
// and server backpressure are retryable; everything else — auth and
// protocol rejections, context expiry, the open circuit breaker — is
// permanent.
func defaultClassify(err error) retry.Class {
	switch {
	case errors.Is(err, ErrConnLost), errors.Is(err, ErrOverloaded), errors.Is(err, ErrDraining):
		return retry.Retryable
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return retry.Retryable
	}
	return retry.Permanent
}

// Addr returns the daemon address this client talks to.
func (c *Client) Addr() string { return c.addr }

// Metrics exposes the client-side registry.
func (c *Client) Metrics() *metrics.Registry { return c.cfg.Metrics }

// Upcall sends the request under the configured per-op deadline, retrying
// transient transport faults with backoff.
func (c *Client) Upcall(req Request) (Response, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.OpTimeout)
	defer cancel()
	return c.UpcallCtx(ctx, req)
}

// UpcallCtx sends the request under the caller's context. The context
// deadline bounds the whole op — every attempt, every backoff sleep; a
// context without a deadline falls back to the configured OpTimeout so a
// span-carrying context can never disable the per-op bound.
func (c *Client) UpcallCtx(ctx context.Context, req Request) (Response, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.OpTimeout)
		defer cancel()
	}
	var resp Response
	p := c.cfg.Retry
	userOnRetry := p.OnRetry
	p.OnRetry = func(attempt int, err error, d time.Duration) {
		c.ctr.retries.Inc()
		if userOnRetry != nil {
			userOnRetry(attempt, err, d)
		}
	}
	err := retry.Do(ctx, p, c.classify, func(ctx context.Context) error {
		if c.breaker != nil {
			if berr := c.breaker.Allow(); berr != nil {
				return berr
			}
		}
		r, aerr := c.attempt(ctx, req)
		if c.breaker != nil {
			if aerr != nil && c.classify(aerr) == retry.Retryable {
				c.breaker.Failure()
			} else {
				// The daemon answered — even a permanent rejection means
				// the transport works.
				c.breaker.Success()
			}
		}
		if aerr == nil {
			resp = r
		}
		return aerr
	})
	if err != nil && (c.classify(err) == retry.Retryable || errors.Is(err, retry.ErrOpen)) {
		c.ctr.giveups.Inc()
	}
	return resp, err
}

// attempt runs one request/response exchange on one pooled connection.
// Any connection-scoped fault retires the connection so its state (a stale
// in-flight response, a half-written frame) can never poison a later
// request. Each attempt gets its own "wire" span — a retried op therefore
// shows one trace with N wire-attempt children, and injected chaos delay on
// this connection is attributed to the wire span it actually slowed.
func (c *Client) attempt(ctx context.Context, req Request) (Response, error) {
	wire := obs.SpanFrom(ctx).Child("wire")
	defer wire.End()
	wire.SetAttr("op", req.Op.String())
	wire.SetAttr("attempt", retry.Attempt(ctx))
	fail := func(err error) (Response, error) {
		wire.SetAttr("error", err.Error())
		return Response{}, err
	}
	cc, err := c.get(ctx)
	if err != nil {
		return fail(err)
	}
	var chaosBefore time.Duration
	chaos, _ := cc.conn.(*chaosConn)
	if chaos != nil && wire != nil {
		chaosBefore = chaos.injectedDelay()
	}
	deadline := time.Now().Add(c.cfg.AttemptTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	cc.conn.SetDeadline(deadline)
	seq := c.seq.Add(1)
	wc := wire.Wire()
	if err := writeFrame(cc.conn, c.cfg.MaxFrame, &envelope{Seq: seq, Req: req, TraceID: wc.Trace, SpanID: wc.Span}); err != nil {
		c.retire(cc)
		return fail(connLost(err))
	}
	var out envelope
	if err := readFrame(cc.r, c.cfg.MaxFrame, &out); err != nil {
		c.retire(cc)
		if chaos != nil && wire != nil {
			wire.SetAttr("chaos_delay_ms", float64(chaos.injectedDelay()-chaosBefore)/1e6)
		}
		return fail(connLost(err))
	}
	if chaos != nil && wire != nil {
		wire.SetAttr("chaos_delay_ms", float64(chaos.injectedDelay()-chaosBefore)/1e6)
	}
	if out.Seq != seq {
		// A response meant for an earlier request on this connection:
		// the stream is out of sync, kill it.
		c.retire(cc)
		return fail(connLost(fmt.Errorf("response seq %d for request seq %d", out.Seq, seq)))
	}
	cc.conn.SetDeadline(time.Time{})
	c.put(cc)
	if out.Err != "" {
		if out.Retryable {
			if out.Err == ErrDraining.Error() {
				return out.Resp, fmt.Errorf("%w: %w", ErrTransport, ErrDraining)
			}
			return out.Resp, fmt.Errorf("%w: %w", ErrTransport, ErrOverloaded)
		}
		// Service-level error: the daemon answered; surface it verbatim.
		return out.Resp, errors.New(out.Err)
	}
	return out.Resp, nil
}

// get checks a connection out of the pool, dialing a fresh one when a pool
// slot is free, or waiting for a connection (or the context) otherwise.
func (c *Client) get(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, connLost(errors.New("client closed"))
	}
	select {
	case cc := <-c.idle:
		return cc, nil
	default:
	}
	select {
	case cc := <-c.idle:
		return cc, nil
	case c.slots <- struct{}{}:
		cc, err := c.dial()
		if err != nil {
			<-c.slots
			return nil, err
		}
		return cc, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// dial opens one connection; the caller owns a pool slot.
func (c *Client) dial() (*clientConn, error) {
	conn, err := c.cfg.Dial(c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, connLost(err)
	}
	cc := &clientConn{conn: conn, r: bufio.NewReader(conn)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, connLost(errors.New("client closed"))
	}
	c.conns[cc] = struct{}{}
	c.mu.Unlock()
	c.ctr.dials.Inc()
	return cc, nil
}

// put returns a healthy connection to the pool.
func (c *Client) put(cc *clientConn) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		cc.conn.Close()
		return
	}
	select {
	case c.idle <- cc:
	default:
		c.retire(cc)
	}
}

// retire closes a connection and releases its pool slot.
func (c *Client) retire(cc *clientConn) {
	cc.conn.Close()
	c.mu.Lock()
	_, tracked := c.conns[cc]
	delete(c.conns, cc)
	c.mu.Unlock()
	if tracked {
		select {
		case <-c.slots:
		default:
		}
		c.ctr.retired.Inc()
	}
}

// Close tears the client down: the pool empties and every connection —
// including ones busy with an in-flight attempt — closes, failing those
// attempts promptly.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conns := make([]*clientConn, 0, len(c.conns))
	for cc := range c.conns {
		conns = append(conns, cc)
	}
	c.conns = make(map[*clientConn]struct{})
	c.mu.Unlock()
	for _, cc := range conns {
		cc.conn.Close()
	}
	for {
		select {
		case <-c.idle:
		default:
			return
		}
	}
}

// NetConfig bundles the client and server tuning for one deployment's
// upcall plane (core.ServerConfig plumbs it through).
type NetConfig struct {
	Client ClientConfig
	Server ServerConfig
}
