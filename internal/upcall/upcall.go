// Package upcall implements the IPC channel between the DataLinks File
// System (a VFS layer, conceptually in the kernel) and the DLFM upcall
// daemon (user space) — the dashed arrow in Figure 1 of the paper.
//
// Every design decision in §4 revolves around when this channel must be
// crossed: token validation at lookup, token-entry checks at open, update
// bookkeeping at write-open and close, and link checks on remove/rename.
// The package therefore counts calls per operation and can inject a fixed
// latency so experiments reproduce the paper's IPC-cost trade-offs on
// modern hardware.
//
// Two transports are provided: a direct in-process transport and a TCP
// transport for running DLFM as a separate daemon (cmd/dlfmd). The TCP
// plane is built for real networks: a length-prefixed framed protocol with
// a hard frame-size limit, a connection pool with health-checked reconnect,
// per-op deadlines, retry with capped exponential backoff and full jitter
// (internal/retry), an optional circuit breaker, and server-side
// backpressure (bounded connections, per-connection request windows, global
// in-flight cap, slow/idle-client eviction, graceful drain). A Chaos fault
// injector wraps either transport so every failure mode is testable
// deterministically.
package upcall

import (
	"context"
	"errors"
	"fmt"
	"time"

	"datalinks/internal/metrics"
	"datalinks/internal/obs"
)

// Op identifies the upcall operation.
type Op uint8

// Upcall operations, one per DLFS interposition point.
const (
	OpValidateToken Op = iota + 1 // fs_lookup with an embedded token
	OpCheckOpen                   // fs_open of a DLFM-owned (full control) file
	OpWriteOpen                   // fs_open for write after a native EACCES (rfd path)
	OpClose                       // fs_close of a tracked open
	OpCheckRemove                 // fs_remove of any file
	OpCheckRename                 // fs_rename of any file
	OpReadOpen                    // read-open notification (full control: sync entry)
)

// String names the op for metrics and traces.
func (o Op) String() string {
	switch o {
	case OpValidateToken:
		return "validate_token"
	case OpCheckOpen:
		return "check_open"
	case OpWriteOpen:
		return "write_open"
	case OpClose:
		return "close"
	case OpCheckRemove:
		return "check_remove"
	case OpCheckRename:
		return "check_rename"
	case OpReadOpen:
		return "read_open"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Ops lists every upcall operation (metrics tables iterate it).
func Ops() []Op {
	return []Op{OpValidateToken, OpCheckOpen, OpWriteOpen, OpClose, OpCheckRemove, OpCheckRename, OpReadOpen}
}

// Request is one upcall from DLFS to DLFM.
type Request struct {
	Op      Op
	Path    string // server-relative file path
	NewPath string // rename target
	Token   string // embedded access token, if any
	UID     int32  // credentials of the application process
	Write   bool   // open access includes write
	OpenID  uint64 // correlation id assigned at open approval, echoed at close
	Size    int64  // close: file size after the open-close window
	Mtime   int64  // close: mtime (unix nanos) after the window
	Strict  bool   // strict-link-check extension: register opens of unlinked files
}

// Response is DLFM's answer.
type Response struct {
	OK       bool
	Err      string // human-readable rejection reason when !OK
	Code     Code   // machine-readable rejection class
	OpenID   uint64 // correlation id for approved opens
	TakeOver bool   // DLFS must retry the physical open with system credentials
}

// Code classifies rejections so DLFS can map them to errno-style errors.
type Code uint8

// Rejection codes.
const (
	CodeOK Code = iota
	CodeNotLinked
	CodePermission
	CodeBadToken
	CodeBusy
	CodeIntegrity
	CodeInternal
)

// Service is the DLFM upcall daemon's interface.
type Service interface {
	Upcall(req Request) (Response, error)
}

// CtxService is implemented by services that accept a request context — the
// carrier for trace spans (and future deadlines) across the upcall plane.
// Service stays the required interface so existing implementations keep
// working; Call upgrades to CtxService when available.
type CtxService interface {
	UpcallCtx(ctx context.Context, req Request) (Response, error)
}

// Call invokes svc with the context when it supports one, else plain Upcall.
// The single dispatch point every DLFS hook goes through.
func Call(ctx context.Context, svc Service, req Request) (Response, error) {
	if cs, ok := svc.(CtxService); ok {
		return cs.UpcallCtx(ctx, req)
	}
	return svc.Upcall(req)
}

// Transport-fault taxonomy. ErrTransport is the base class every transport
// failure wraps; the retry classifier keys off the finer-grained sentinels.
var (
	// ErrTransport reports a broken transport (daemon down). Every error
	// below wraps it, so errors.Is(err, ErrTransport) catches them all.
	ErrTransport = errors.New("upcall: transport failure")
	// ErrConnLost marks a connection-scoped fault: dial failure, I/O
	// deadline, mid-request drop, torn frame, or a decode error. The
	// connection it happened on has been retired — state never leaks into
	// the next request — and a fresh attempt may succeed. Retryable.
	ErrConnLost = errors.New("upcall: connection lost")
	// ErrOverloaded is the server's backpressure signal: a request arrived
	// while the per-connection window or the global in-flight cap was
	// full. The connection is healthy; back off and retry.
	ErrOverloaded = errors.New("upcall: server overloaded")
	// ErrDraining reports a server that is shutting down gracefully:
	// it finishes in-flight requests but accepts no new ones. Retryable
	// (a replacement daemon may pick up the address).
	ErrDraining = errors.New("upcall: server draining")
	// ErrFrameTooLarge reports a frame beyond the configured size limit —
	// in either direction. Oversized inbound frames cannot be skipped
	// (the stream is unparseable past them), so the connection dies.
	ErrFrameTooLarge = errors.New("upcall: frame exceeds size limit")
)

// connLost wraps a low-level cause as a retryable connection-loss fault.
func connLost(cause error) error {
	return fmt.Errorf("%w: %w: %w", ErrTransport, ErrConnLost, cause)
}

// Transport is a Service that carries calls to a remote Service while
// recording metrics and injecting simulated IPC latency.
type Transport struct {
	svc     Service
	latency time.Duration
	reg     *metrics.Registry
	sem     chan struct{} // nil: unbounded
}

// NewInProc wraps a Service with metrics and optional injected latency,
// modelling same-machine IPC (the production DLFS↔DLFM configuration).
func NewInProc(svc Service, latency time.Duration, reg *metrics.Registry) *Transport {
	return NewInProcWidth(svc, latency, 0, reg)
}

// NewInProcWidth is NewInProc with a bound on concurrent upcalls (0 =
// unbounded): at most width requests are in the IPC channel at once, the rest
// queue. The semaphore encloses the injected latency — a real IPC channel's
// width covers the wire time, not just the daemon's service time — which is
// what makes per-server capacity finite in scale-out experiments.
func NewInProcWidth(svc Service, latency time.Duration, width int, reg *metrics.Registry) *Transport {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	t := &Transport{svc: svc, latency: latency, reg: reg}
	if width > 0 {
		t.sem = make(chan struct{}, width)
	}
	return t
}

// Upcall forwards the request, counting and timing it (aggregate and
// per-op, so experiments report p50/p95/p99 per operation).
func (t *Transport) Upcall(req Request) (Response, error) {
	return t.UpcallCtx(context.Background(), req)
}

// UpcallCtx is Upcall carrying the request context through to the service.
// When the context holds a trace span, the in-proc IPC hop gets its own
// "upcall" child span — the in-process analogue of the TCP client's "wire"
// span.
func (t *Transport) UpcallCtx(ctx context.Context, req Request) (Response, error) {
	start := time.Now()
	if sp := obs.SpanFrom(ctx); sp != nil {
		c := sp.Child("upcall")
		c.SetAttr("op", req.Op.String())
		ctx = obs.ContextWithSpan(ctx, c)
		defer c.End()
	}
	if t.sem != nil {
		t.sem <- struct{}{}
		defer func() { <-t.sem }()
	}
	if t.latency > 0 {
		time.Sleep(t.latency)
	}
	resp, err := Call(ctx, t.svc, req)
	opName := req.Op.String()
	t.reg.Counter("upcall." + opName).Inc()
	t.reg.Counter("upcall.total").Inc()
	elapsed := time.Since(start)
	t.reg.Histogram("upcall.latency").Observe(elapsed)
	t.reg.Histogram("upcall.latency." + opName).Observe(elapsed)
	return resp, err
}

// Metrics exposes the transport's registry.
func (t *Transport) Metrics() *metrics.Registry { return t.reg }

// SetLatency changes the injected IPC latency (experiments sweep this).
func (t *Transport) SetLatency(d time.Duration) { t.latency = d }

// Calls returns the total number of upcalls made so far.
func (t *Transport) Calls() int64 { return t.reg.Counter("upcall.total").Value() }

// CallsFor returns the upcall count for one operation.
func (t *Transport) CallsFor(op Op) int64 {
	return t.reg.Counter("upcall." + op.String()).Value()
}

// Reset zeroes all transport metrics.
func (t *Transport) Reset() { t.reg.ResetAll() }
