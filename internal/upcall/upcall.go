// Package upcall implements the IPC channel between the DataLinks File
// System (a VFS layer, conceptually in the kernel) and the DLFM upcall
// daemon (user space) — the dashed arrow in Figure 1 of the paper.
//
// Every design decision in §4 revolves around when this channel must be
// crossed: token validation at lookup, token-entry checks at open, update
// bookkeeping at write-open and close, and link checks on remove/rename.
// The package therefore counts calls per operation and can inject a fixed
// latency so experiments reproduce the paper's IPC-cost trade-offs on
// modern hardware.
//
// Two transports are provided: a direct in-process transport and a TCP
// transport (encoding/gob) for running DLFM as a separate process.
package upcall

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"datalinks/internal/metrics"
)

// Op identifies the upcall operation.
type Op uint8

// Upcall operations, one per DLFS interposition point.
const (
	OpValidateToken Op = iota + 1 // fs_lookup with an embedded token
	OpCheckOpen                   // fs_open of a DLFM-owned (full control) file
	OpWriteOpen                   // fs_open for write after a native EACCES (rfd path)
	OpClose                       // fs_close of a tracked open
	OpCheckRemove                 // fs_remove of any file
	OpCheckRename                 // fs_rename of any file
	OpReadOpen                    // read-open notification (full control: sync entry)
)

// String names the op for metrics and traces.
func (o Op) String() string {
	switch o {
	case OpValidateToken:
		return "validate_token"
	case OpCheckOpen:
		return "check_open"
	case OpWriteOpen:
		return "write_open"
	case OpClose:
		return "close"
	case OpCheckRemove:
		return "check_remove"
	case OpCheckRename:
		return "check_rename"
	case OpReadOpen:
		return "read_open"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Request is one upcall from DLFS to DLFM.
type Request struct {
	Op      Op
	Path    string // server-relative file path
	NewPath string // rename target
	Token   string // embedded access token, if any
	UID     int32  // credentials of the application process
	Write   bool   // open access includes write
	OpenID  uint64 // correlation id assigned at open approval, echoed at close
	Size    int64  // close: file size after the open-close window
	Mtime   int64  // close: mtime (unix nanos) after the window
	Strict  bool   // strict-link-check extension: register opens of unlinked files
}

// Response is DLFM's answer.
type Response struct {
	OK       bool
	Err      string // human-readable rejection reason when !OK
	Code     Code   // machine-readable rejection class
	OpenID   uint64 // correlation id for approved opens
	TakeOver bool   // DLFS must retry the physical open with system credentials
}

// Code classifies rejections so DLFS can map them to errno-style errors.
type Code uint8

// Rejection codes.
const (
	CodeOK Code = iota
	CodeNotLinked
	CodePermission
	CodeBadToken
	CodeBusy
	CodeIntegrity
	CodeInternal
)

// Service is the DLFM upcall daemon's interface.
type Service interface {
	Upcall(req Request) (Response, error)
}

// ErrTransport reports a broken transport (daemon down).
var ErrTransport = errors.New("upcall: transport failure")

// Transport is a Service that carries calls to a remote Service while
// recording metrics and injecting simulated IPC latency.
type Transport struct {
	svc     Service
	latency time.Duration
	reg     *metrics.Registry
}

// NewInProc wraps a Service with metrics and optional injected latency,
// modelling same-machine IPC (the production DLFS↔DLFM configuration).
func NewInProc(svc Service, latency time.Duration, reg *metrics.Registry) *Transport {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Transport{svc: svc, latency: latency, reg: reg}
}

// Upcall forwards the request, counting and timing it.
func (t *Transport) Upcall(req Request) (Response, error) {
	start := time.Now()
	if t.latency > 0 {
		time.Sleep(t.latency)
	}
	resp, err := t.svc.Upcall(req)
	t.reg.Counter("upcall." + req.Op.String()).Inc()
	t.reg.Counter("upcall.total").Inc()
	t.reg.Histogram("upcall.latency").Observe(time.Since(start))
	return resp, err
}

// Metrics exposes the transport's registry.
func (t *Transport) Metrics() *metrics.Registry { return t.reg }

// SetLatency changes the injected IPC latency (experiments sweep this).
func (t *Transport) SetLatency(d time.Duration) { t.latency = d }

// Calls returns the total number of upcalls made so far.
func (t *Transport) Calls() int64 { return t.reg.Counter("upcall.total").Value() }

// CallsFor returns the upcall count for one operation.
func (t *Transport) CallsFor(op Op) int64 {
	return t.reg.Counter("upcall." + op.String()).Value()
}

// Reset zeroes all transport metrics.
func (t *Transport) Reset() { t.reg.ResetAll() }

// ---- TCP transport ----

// wire is the gob envelope.
type wire struct {
	Req  Request
	Resp Response
	Err  string
}

// Server serves a Service over TCP.
type Server struct {
	svc Service
	ln  net.Listener
	wg  sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Serve starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func Serve(svc Service, addr string) (*Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	s := &Server{svc: svc, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var w wire
		if err := dec.Decode(&w); err != nil {
			return
		}
		resp, err := s.svc.Upcall(w.Req)
		out := wire{Resp: resp}
		if err != nil {
			out.Err = err.Error()
		}
		if err := enc.Encode(&out); err != nil {
			return
		}
	}
}

// Close stops the server: the listener and every active connection are
// closed, then in-flight handlers drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

// Client is a Service talking to a remote Server over one TCP connection.
// Calls are serialized; the DLFS kernel path is naturally serialized per
// upcall anyway.
type Client struct {
	mu   sync.Mutex
	addr string
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	c := &Client{addr: addr}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) connect() error {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrTransport, err)
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	return nil
}

// Upcall sends the request and waits for the response, reconnecting once on
// a broken connection.
func (c *Client) Upcall(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if c.conn == nil {
			if err := c.connect(); err != nil {
				return Response{}, err
			}
		}
		if err := c.enc.Encode(&wire{Req: req}); err == nil {
			var w wire
			if err := c.dec.Decode(&w); err == nil {
				if w.Err != "" {
					return w.Resp, errors.New(w.Err)
				}
				return w.Resp, nil
			}
		}
		c.conn.Close()
		c.conn = nil
		if attempt >= 1 {
			return Response{}, fmt.Errorf("%w: connection lost to %s", ErrTransport, c.addr)
		}
	}
}

// Close tears down the connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}
