package upcall

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"net"
	"testing"
	"time"

	"datalinks/internal/obs"
	"datalinks/internal/retry"
)

// legacyEnvelope is the frame body as it existed before trace propagation —
// no TraceID/SpanID. Gob matches struct fields by name, so this stands in
// for an old peer on either end of the connection.
type legacyEnvelope struct {
	Seq       uint64
	Req       Request
	Resp      Response
	Err       string
	Retryable bool
}

// A new client talking to an old server: the old decoder must ignore the
// trace fields; an old client talking to a new server: the new decoder must
// see a zero (= untraced) wire context. Version skew is safe both ways.
func TestEnvelopeVersionSkew(t *testing.T) {
	// New encoder -> old decoder.
	var buf bytes.Buffer
	in := envelope{Seq: 9, Req: Request{Op: OpClose, Path: "/f"}, TraceID: 77, SpanID: 3}
	if err := writeFrame(&buf, DefaultMaxFrame, &in); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	payload := buf.Bytes()[4:]
	if n := binary.BigEndian.Uint32(buf.Bytes()[:4]); int(n) != len(payload) {
		t.Fatalf("length prefix %d != payload %d", n, len(payload))
	}
	var old legacyEnvelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&old); err != nil {
		t.Fatalf("old peer failed to decode traced frame: %v", err)
	}
	if old.Seq != 9 || old.Req.Op != OpClose || old.Req.Path != "/f" {
		t.Fatalf("payload lost in old decode: %+v", old)
	}

	// Old encoder -> new decoder.
	var legacy bytes.Buffer
	legacy.Write([]byte{0, 0, 0, 0})
	if err := gob.NewEncoder(&legacy).Encode(&legacyEnvelope{Seq: 4, Resp: Response{OK: true, OpenID: 12}}); err != nil {
		t.Fatalf("legacy encode: %v", err)
	}
	b := legacy.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	var out envelope
	if err := readFrame(bytes.NewReader(b), DefaultMaxFrame, &out); err != nil {
		t.Fatalf("new peer failed to decode legacy frame: %v", err)
	}
	if out.Seq != 4 || !out.Resp.OK || out.Resp.OpenID != 12 {
		t.Fatalf("payload lost in new decode: %+v", out)
	}
	if out.TraceID != 0 || out.SpanID != 0 {
		t.Fatalf("legacy frame must decode as untraced, got trace=%d span=%d", out.TraceID, out.SpanID)
	}
}

// A dropped-then-retried upcall must yield ONE trace with two wire-attempt
// child spans — not two traces. The first attempt's reply is swallowed (the
// handler reads the frame and goes silent until the attempt deadline); the
// retry lands on a fresh connection and succeeds.
func TestRetriedUpcallIsOneTraceWithTwoWireAttempts(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	addr := rawServer(t,
		func(conn net.Conn) {
			var e envelope
			readFrame(bufio.NewReader(conn), DefaultMaxFrame, &e)
			<-block // reply never comes; the client's attempt deadline fires
		},
		echoFrames(Response{OK: true}),
	)
	cfg := fastClient()
	cfg.AttemptTimeout = 100 * time.Millisecond
	client, err := DialConfig(addr, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	tracer := obs.New(obs.Config{})
	tr := tracer.Start("commit")
	ctx := obs.ContextWithSpan(t.Context(), tr.Root())
	resp, err := client.UpcallCtx(ctx, Request{Op: OpClose, Path: "/f"})
	if err != nil || !resp.OK {
		t.Fatalf("upcall after retry: %+v, %v", resp, err)
	}
	tr.Finish()

	traces := tracer.Recent(0)
	if len(traces) != 1 {
		t.Fatalf("retried op produced %d traces, want 1", len(traces))
	}
	assertTwoWireAttempts(t, traces[0])
}

// The same invariant must hold when the retry crosses a circuit-breaker
// half-open probe: first attempt fails, the breaker opens, the backoff
// outlives the cooldown, and the probe attempt is still a wire span of the
// SAME trace.
func TestRetryAcrossBreakerProbeStaysOneTrace(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	addr := rawServer(t,
		func(conn net.Conn) {
			var e envelope
			readFrame(bufio.NewReader(conn), DefaultMaxFrame, &e)
			<-block
		},
		echoFrames(Response{OK: true}),
	)
	cfg := ClientConfig{
		PoolSize:       1,
		DialTimeout:    time.Second,
		AttemptTimeout: 50 * time.Millisecond,
		// Backoff (fixed 30ms, identity jitter) outlives the breaker
		// cooldown (5ms): attempt 1 opens the circuit, attempt 2 is the
		// half-open probe.
		Retry:   retry.Policy{MaxAttempts: 4, BaseDelay: 30 * time.Millisecond, MaxDelay: 30 * time.Millisecond, Jitter: func(d time.Duration) time.Duration { return d }},
		Breaker: &retry.BreakerConfig{Threshold: 1, Cooldown: 5 * time.Millisecond},
	}
	client, err := DialConfig(addr, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	tracer := obs.New(obs.Config{})
	tr := tracer.Start("commit")
	ctx := obs.ContextWithSpan(t.Context(), tr.Root())
	resp, err := client.UpcallCtx(ctx, Request{Op: OpClose, Path: "/f"})
	if err != nil || !resp.OK {
		t.Fatalf("upcall across breaker probe: %+v, %v", resp, err)
	}
	tr.Finish()

	traces := tracer.Recent(0)
	if len(traces) != 1 {
		t.Fatalf("probe retry produced %d traces, want 1", len(traces))
	}
	assertTwoWireAttempts(t, traces[0])
}

func assertTwoWireAttempts(t *testing.T, tr *obs.Trace) {
	t.Helper()
	wires := tr.Root().FindAll("wire")
	if len(wires) != 2 {
		t.Fatalf("trace has %d wire spans, want 2", len(wires))
	}
	for i, w := range wires {
		got, ok := w.Attr("attempt")
		if !ok || got.(int) != i+1 {
			t.Fatalf("wire span %d: attempt attr = %v, %v", i, got, ok)
		}
	}
	if _, ok := wires[0].Attr("error"); !ok {
		t.Fatal("first (dropped) wire attempt has no error attr")
	}
	if _, ok := wires[1].Attr("error"); ok {
		t.Fatal("successful wire attempt should not carry an error attr")
	}
}

// Over real TCP with client and server sharing a process (the loopback
// deployment every experiment uses), the server's span must stitch into the
// client's live trace under the wire span that carried the request.
func TestServerAdoptionStitchesOverTCP(t *testing.T) {
	tracer := obs.New(obs.Config{})
	svc := &echoService{resp: Response{OK: true}}
	server, addr, err := ServeConfig(svc, "127.0.0.1:0", ServerConfig{Tracer: tracer})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()
	client, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	tr := tracer.Start("commit")
	ctx := obs.ContextWithSpan(t.Context(), tr.Root())
	if _, err := client.UpcallCtx(ctx, Request{Op: OpWriteOpen, Path: "/f"}); err != nil {
		t.Fatalf("upcall: %v", err)
	}
	tr.Finish()

	wire := tr.Root().Find("wire")
	if wire == nil {
		t.Fatal("no wire span")
	}
	srv := wire.Find("server")
	if srv == nil || srv == wire {
		t.Fatalf("server span not stitched under wire span (children: %d)", len(wire.Children()))
	}
	if op, _ := srv.Attr("op"); op != OpWriteOpen.String() {
		t.Fatalf("server span op attr = %v", op)
	}
	if len(tracer.Recent(0)) != 1 {
		t.Fatalf("stitched op recorded %d traces, want 1", len(tracer.Recent(0)))
	}
}

// Chaos delay injected on the connection must be attributed to the wire
// span that suffered it via the chaos_delay_ms attr.
func TestChaosDelayAttributedToWireSpan(t *testing.T) {
	svc := &echoService{resp: Response{OK: true}}
	server, addr, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()
	ch := &Chaos{Seed: 1, DelayDist: Delay{Prob: 1, Min: 5 * time.Millisecond, Max: 6 * time.Millisecond}}
	client, err := DialConfig(addr, ClientConfig{Chaos: ch, DisableBreaker: true})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	tracer := obs.New(obs.Config{})
	tr := tracer.Start("commit")
	ctx := obs.ContextWithSpan(t.Context(), tr.Root())
	if _, err := client.UpcallCtx(ctx, Request{Op: OpClose}); err != nil {
		t.Fatalf("upcall: %v", err)
	}
	tr.Finish()

	wire := tr.Root().Find("wire")
	if wire == nil {
		t.Fatal("no wire span")
	}
	v, ok := wire.Attr("chaos_delay_ms")
	if !ok {
		t.Fatal("wire span has no chaos_delay_ms attr")
	}
	if ms := v.(float64); ms < 5 {
		t.Fatalf("chaos_delay_ms = %v, want >= 5 (write + read delays)", ms)
	}
}
