package upcall

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"datalinks/internal/metrics"
	"datalinks/internal/obs"
)

// ServerConfig tunes the TCP upcall server's resource bounds. The zero
// value gets production defaults; tests shrink the knobs to force the
// backpressure and eviction paths deterministically.
type ServerConfig struct {
	// MaxConns bounds concurrent connections; excess accepts are closed
	// immediately (the client sees a connection loss and backs off).
	// <= 0: default 256.
	MaxConns int
	// Window bounds in-flight requests per connection. A request arriving
	// while the window is full is answered immediately with a retryable
	// overload error instead of spawning an unbounded goroutine.
	// <= 0: default 16.
	Window int
	// MaxInflight bounds in-flight requests across all connections.
	// <= 0: default 1024.
	MaxInflight int
	// FrameTimeout bounds reading the body of a started request frame —
	// a client that goes silent mid-frame is cut off. <= 0: default 10s.
	FrameTimeout time.Duration
	// WriteTimeout bounds writing one response frame; a client too slow to
	// drain its responses is evicted (its connection closed) rather than
	// allowed to pin a handler goroutine. <= 0: default 10s.
	WriteTimeout time.Duration
	// IdleTimeout evicts connections with no request for this long
	// (0: idle connections live forever).
	IdleTimeout time.Duration
	// MaxFrame bounds one frame's payload (<= 0: DefaultMaxFrame).
	// An oversized inbound frame kills its connection — the stream is
	// unparseable past it.
	MaxFrame int
	// Metrics receives the server-side counters (nil: private registry).
	Metrics *metrics.Registry
	// Tracer, when set, adopts inbound trace contexts: a request carrying a
	// TraceID gets a "server" span stitched under the client's wire span (or
	// a standalone remote trace when the client lives in another process).
	// nil: requests are served untraced.
	Tracer *obs.Tracer
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 1024
	}
	if c.FrameTimeout <= 0 {
		c.FrameTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	return c
}

// Server serves a Service over TCP with bounded resources and graceful
// drain.
type Server struct {
	svc  Service
	cfg  ServerConfig
	ln   net.Listener
	wg   sync.WaitGroup // accept loop + per-conn readers
	gsem chan struct{}  // global in-flight slots

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	draining atomic.Bool

	ctr serverCounters
}

type serverCounters struct {
	requests         *metrics.Counter
	inflightRejected *metrics.Counter
	connsRejected    *metrics.Counter
	evicted          *metrics.Counter
	oversized        *metrics.Counter
	drainRejected    *metrics.Counter
}

// Serve starts accepting connections on addr (e.g. "127.0.0.1:0") with
// default limits and returns the bound address.
func Serve(svc Service, addr string) (*Server, string, error) {
	return ServeConfig(svc, addr, ServerConfig{})
}

// ServeConfig starts a server with explicit resource bounds.
func ServeConfig(svc Service, addr string, cfg ServerConfig) (*Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	cfg = cfg.withDefaults()
	s := &Server{
		svc:   svc,
		cfg:   cfg,
		ln:    ln,
		gsem:  make(chan struct{}, cfg.MaxInflight),
		conns: make(map[net.Conn]struct{}),
		ctr: serverCounters{
			requests:         cfg.Metrics.Counter("upcall.server.requests"),
			inflightRejected: cfg.Metrics.Counter("upcall.inflight_rejected"),
			connsRejected:    cfg.Metrics.Counter("upcall.conns_rejected"),
			evicted:          cfg.Metrics.Counter("upcall.evicted"),
			oversized:        cfg.Metrics.Counter("upcall.frames_oversized"),
			drainRejected:    cfg.Metrics.Counter("upcall.drain_rejected"),
		},
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, ln.Addr().String(), nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Metrics exposes the server-side registry.
func (s *Server) Metrics() *metrics.Registry { return s.cfg.Metrics }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed || s.draining.Load() || len(s.conns) >= s.cfg.MaxConns {
			rejected := !s.closed && !s.draining.Load()
			s.mu.Unlock()
			if rejected {
				s.ctr.connsRejected.Inc()
			}
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// readRequest reads one framed request. The header wait uses IdleTimeout
// (a quiet connection may be evicted); once a frame has started, its body
// must arrive within FrameTimeout.
func (s *Server) readRequest(conn net.Conn, e *envelope) error {
	if s.cfg.IdleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	} else {
		conn.SetReadDeadline(time.Time{})
	}
	// Drain publishes its flag before nudging read deadlines, so if the
	// flag is not visible here our deadline was set after any nudge and
	// stands; if it is visible, re-arm the nudge we may have overwritten.
	if s.draining.Load() {
		conn.SetReadDeadline(time.Now())
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(s.cfg.MaxFrame) {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, s.cfg.MaxFrame)
	}
	conn.SetReadDeadline(time.Now().Add(s.cfg.FrameTimeout))
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return err
	}
	return decodeEnvelope(payload, e)
}

// reply writes one response frame under the connection's write mutex with
// the write deadline armed. A deadline error means the client is too slow
// to drain responses: the caller evicts it.
func (s *Server) reply(conn net.Conn, wmu *sync.Mutex, e *envelope) error {
	wmu.Lock()
	defer wmu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	return writeFrame(conn, s.cfg.MaxFrame, e)
}

func (s *Server) serveConn(conn net.Conn) {
	var (
		handlers sync.WaitGroup                      // in-flight requests on this conn
		window   = make(chan struct{}, s.cfg.Window) // per-conn request window
		wmu      sync.Mutex                          // serializes response frames
	)
	defer func() {
		// Let in-flight handlers flush their responses before the
		// connection closes — a drain must not abandon accepted work.
		handlers.Wait()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		if s.draining.Load() {
			return
		}
		var e envelope
		if err := s.readRequest(conn, &e); err != nil {
			switch {
			case s.draining.Load() || errors.Is(err, io.EOF):
				// Drain nudge or clean client hangup.
			case errors.Is(err, ErrFrameTooLarge):
				s.ctr.oversized.Inc()
			default:
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					s.ctr.evicted.Inc() // idle or mid-frame stall
				}
			}
			return
		}
		if s.draining.Load() {
			// Accepted after the drain began: refuse, retryably.
			s.ctr.drainRejected.Inc()
			_ = s.reply(conn, &wmu, &envelope{Seq: e.Seq, Err: ErrDraining.Error(), Retryable: true})
			return
		}
		// Backpressure: a full per-conn window or global in-flight cap
		// answers immediately with a retryable overload instead of
		// queueing unbounded goroutines.
		select {
		case window <- struct{}{}:
		default:
			s.ctr.inflightRejected.Inc()
			if err := s.reply(conn, &wmu, &envelope{Seq: e.Seq, Err: ErrOverloaded.Error(), Retryable: true}); err != nil {
				return
			}
			continue
		}
		select {
		case s.gsem <- struct{}{}:
		default:
			<-window
			s.ctr.inflightRejected.Inc()
			if err := s.reply(conn, &wmu, &envelope{Seq: e.Seq, Err: ErrOverloaded.Error(), Retryable: true}); err != nil {
				return
			}
			continue
		}
		s.ctr.requests.Inc()
		handlers.Add(1)
		go func(e envelope) {
			defer func() {
				<-window
				<-s.gsem
				handlers.Done()
			}()
			ctx := context.Background()
			if e.TraceID != 0 && s.cfg.Tracer.Enabled() {
				sp, done := s.cfg.Tracer.Adopt(obs.WireContext{Trace: e.TraceID, Span: e.SpanID}, "server")
				sp.SetAttr("op", e.Req.Op.String())
				ctx = obs.ContextWithSpan(ctx, sp)
				defer done()
			}
			resp, err := Call(ctx, s.svc, e.Req)
			out := envelope{Seq: e.Seq, Resp: resp}
			if err != nil {
				out.Err = err.Error()
			}
			if werr := s.reply(conn, &wmu, &out); werr != nil {
				var ne net.Error
				if errors.As(werr, &ne) && ne.Timeout() {
					s.ctr.evicted.Inc() // slow client: cut it off
				}
				conn.Close()
			}
		}(e)
	}
}

// Drain shuts the server down gracefully: stop accepting, let in-flight
// requests finish and their responses flush, then close the connections.
// Returns an error if the drain did not complete within timeout (the
// stragglers are then closed hard).
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	first := !s.draining.Swap(true)
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if first {
		s.ln.Close()
	}
	// Nudge readers out of their header waits; in-flight handlers are
	// unaffected (the deadline only aborts reads).
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var expired <-chan time.Time
	if timeout > 0 {
		expired = time.After(timeout)
	}
	select {
	case <-done:
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		return nil
	case <-expired:
		// Hard-close the stragglers but do NOT wait for their handlers: a
		// handler stuck inside the service would otherwise pin the drain
		// forever, and the caller (dlfmd) is about to exit anyway.
		s.mu.Lock()
		s.closed = true
		conns = conns[:0]
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		return fmt.Errorf("upcall: drain timed out after %v", timeout)
	}
}

// Close stops the server hard: the listener and every active connection are
// closed, then in-flight handlers drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.draining.Store(true)
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}
