package upcall

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"datalinks/internal/obs"
)

// Delay is a uniform injected-latency distribution: with probability Prob,
// a message is delayed by a duration uniform in [Min, Max].
type Delay struct {
	Prob float64
	Min  time.Duration
	Max  time.Duration
}

// Chaos injects transport faults deterministically (seeded PRNG) so every
// failure mode of the network plane is testable without a flaky network:
//
//   - DropProb: the message is swallowed — sent into the void, no reply
//     ever comes (the reader's deadline fires; the classic lost-ack case).
//   - ResetProb: the connection is torn down mid-operation.
//   - DelayDist: the message is delayed (tail-latency injection).
//   - Partition: while set, every dial and every in-flight message fails
//     (a full network partition).
//
// Wrap an in-process Service with WrapService, or a TCP client's dialer
// with WrapDial (every connection's reads/writes then roll the dice).
// Enable(false) turns all injection off — a soak can end with a clean
// verification phase over the same transport.
type Chaos struct {
	Seed      int64
	DropProb  float64
	ResetProb float64
	DelayDist Delay

	mu  sync.Mutex
	rng *rand.Rand

	disabled    atomic.Bool
	partitioned atomic.Bool

	drops    atomic.Int64
	resets   atomic.Int64
	delays   atomic.Int64
	partHits atomic.Int64
}

// Injected fault errors. All are connection-scoped: the client classifies
// them retryable via ErrConnLost.
var (
	errChaosDropped     = errors.New("chaos: message dropped")
	errChaosReset       = errors.New("chaos: connection reset")
	errChaosPartitioned = errors.New("chaos: network partitioned")
)

// Enable turns fault injection on or off (a zero-value Chaos starts on).
func (c *Chaos) Enable(on bool) { c.disabled.Store(!on) }

// Partition simulates a full network partition while on.
func (c *Chaos) Partition(on bool) { c.partitioned.Store(on) }

// active reports whether faults should be injected at all.
func (c *Chaos) active() bool { return c != nil && !c.disabled.Load() }

// ChaosStats counts the faults injected so far.
type ChaosStats struct {
	Drops, Resets, Delays, PartitionHits int64
}

// Stats returns the injected-fault counters.
func (c *Chaos) Stats() ChaosStats {
	return ChaosStats{
		Drops:         c.drops.Load(),
		Resets:        c.resets.Load(),
		Delays:        c.delays.Load(),
		PartitionHits: c.partHits.Load(),
	}
}

// roll decides one message's fate.
func (c *Chaos) roll() (delay time.Duration, drop, reset bool) {
	c.mu.Lock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.Seed))
	}
	rDelay := c.rng.Float64()
	var span int64
	if c.DelayDist.Max > c.DelayDist.Min {
		span = c.rng.Int63n(int64(c.DelayDist.Max - c.DelayDist.Min))
	}
	rDrop := c.rng.Float64()
	rReset := c.rng.Float64()
	c.mu.Unlock()
	if rDelay < c.DelayDist.Prob {
		delay = c.DelayDist.Min + time.Duration(span)
		c.delays.Add(1)
	}
	drop = rDrop < c.DropProb
	reset = rReset < c.ResetProb
	return delay, drop, reset
}

// Strike rolls one replication-stream frame's fate: nil means the frame goes
// through; an ErrConnLost-wrapped error means it was dropped, reset, or hit
// a partition (the caller's retry discipline classifies it transient exactly
// like an upcall transport fault). Injected delays sleep here, modelling a
// slow replica link. This is the hook that extends Chaos beyond the upcall
// wire to any message stream — the shard replicator consults it per ship
// frame.
func (c *Chaos) Strike() error {
	if !c.active() {
		return nil
	}
	if c.partitioned.Load() {
		c.partHits.Add(1)
		return connLost(errChaosPartitioned)
	}
	delay, drop, reset := c.roll()
	if delay > 0 {
		time.Sleep(delay)
	}
	if reset {
		c.resets.Add(1)
		return connLost(errChaosReset)
	}
	if drop {
		c.drops.Add(1)
		return connLost(errChaosDropped)
	}
	return nil
}

// WrapService wraps an in-process Service with fault injection. Faults are
// injected before the call reaches the service, modelling a request lost
// or delayed on its way to the daemon.
func (c *Chaos) WrapService(svc Service) Service {
	return &chaosService{c: c, svc: svc}
}

type chaosService struct {
	c   *Chaos
	svc Service
}

func (s *chaosService) Upcall(req Request) (Response, error) {
	return s.UpcallCtx(context.Background(), req)
}

// UpcallCtx injects faults, attributing any injected delay to the request's
// span (attr chaos_delay_ms) so traces separate injected from real latency.
func (s *chaosService) UpcallCtx(ctx context.Context, req Request) (Response, error) {
	if !s.c.active() {
		return Call(ctx, s.svc, req)
	}
	if s.c.partitioned.Load() {
		s.c.partHits.Add(1)
		return Response{}, connLost(errChaosPartitioned)
	}
	delay, drop, reset := s.c.roll()
	if delay > 0 {
		time.Sleep(delay)
		obs.SpanFrom(ctx).SetAttr("chaos_delay_ms", float64(delay.Nanoseconds())/1e6)
	}
	if reset {
		s.c.resets.Add(1)
		return Response{}, connLost(errChaosReset)
	}
	if drop {
		s.c.drops.Add(1)
		return Response{}, connLost(errChaosDropped)
	}
	return Call(ctx, s.svc, req)
}

// WrapDial wraps a DialFunc so every connection it opens injects faults at
// the read/write level (nil dial = the production TCP dialer). Unlike
// WrapService, a dropped write here is swallowed silently — the request
// may or may not have reached the daemon, and only the reader's deadline
// uncovers it. That is the case that makes retry discipline hard, so it is
// the one the chaos tests lean on.
func (c *Chaos) WrapDial(dial DialFunc) DialFunc {
	if dial == nil {
		dial = netDial
	}
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		if c.active() && c.partitioned.Load() {
			c.partHits.Add(1)
			return nil, errChaosPartitioned
		}
		conn, err := dial(addr, timeout)
		if err != nil {
			return nil, err
		}
		return &chaosConn{Conn: conn, c: c}, nil
	}
}

// chaosConn injects faults on a live connection. injected accumulates the
// delay this connection has slept so far (nanoseconds); the client reads the
// delta around one request's I/O to attribute injected latency to that
// request's wire span (attr chaos_delay_ms).
type chaosConn struct {
	net.Conn
	c        *Chaos
	injected atomic.Int64
}

// injectedDelay returns the total delay injected on this connection so far.
func (cc *chaosConn) injectedDelay() time.Duration {
	return time.Duration(cc.injected.Load())
}

func (cc *chaosConn) Write(p []byte) (int, error) {
	c := cc.c
	if !c.active() {
		return cc.Conn.Write(p)
	}
	if c.partitioned.Load() {
		c.partHits.Add(1)
		cc.Conn.Close()
		return 0, errChaosPartitioned
	}
	delay, drop, reset := c.roll()
	if delay > 0 {
		cc.injected.Add(int64(delay))
		time.Sleep(delay)
	}
	if reset {
		c.resets.Add(1)
		cc.Conn.Close()
		return 0, errChaosReset
	}
	if drop {
		// Swallowed: pretend success. The reply never comes and the
		// read deadline uncovers the loss.
		c.drops.Add(1)
		return len(p), nil
	}
	return cc.Conn.Write(p)
}

func (cc *chaosConn) Read(p []byte) (int, error) {
	c := cc.c
	if !c.active() {
		return cc.Conn.Read(p)
	}
	if c.partitioned.Load() {
		c.partHits.Add(1)
		cc.Conn.Close()
		return 0, errChaosPartitioned
	}
	delay, _, reset := c.roll()
	if delay > 0 {
		cc.injected.Add(int64(delay))
		time.Sleep(delay)
	}
	if reset {
		c.resets.Add(1)
		cc.Conn.Close()
		return 0, errChaosReset
	}
	return cc.Conn.Read(p)
}
