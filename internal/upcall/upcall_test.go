package upcall

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// echoService answers every upcall with a canned response and records calls.
type echoService struct {
	mu    sync.Mutex
	calls []Request
	resp  Response
	err   error
}

func (e *echoService) Upcall(req Request) (Response, error) {
	e.mu.Lock()
	e.calls = append(e.calls, req)
	e.mu.Unlock()
	return e.resp, e.err
}

func TestInProcTransportCountsAndForwards(t *testing.T) {
	svc := &echoService{resp: Response{OK: true, OpenID: 42}}
	tr := NewInProc(svc, 0, nil)
	resp, err := tr.Upcall(Request{Op: OpValidateToken, Path: "/f", Token: "tok"})
	if err != nil || !resp.OK || resp.OpenID != 42 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	tr.Upcall(Request{Op: OpClose})
	if tr.Calls() != 2 {
		t.Fatalf("calls = %d", tr.Calls())
	}
	if tr.CallsFor(OpValidateToken) != 1 || tr.CallsFor(OpClose) != 1 {
		t.Fatalf("per-op counts wrong")
	}
	tr.Reset()
	if tr.Calls() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestInProcLatencyInjection(t *testing.T) {
	svc := &echoService{resp: Response{OK: true}}
	tr := NewInProc(svc, 5*time.Millisecond, nil)
	start := time.Now()
	tr.Upcall(Request{Op: OpReadOpen})
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("latency not injected: %v", d)
	}
	tr.SetLatency(0)
	start = time.Now()
	tr.Upcall(Request{Op: OpReadOpen})
	if d := time.Since(start); d > 3*time.Millisecond {
		t.Fatalf("latency not cleared: %v", d)
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	svc := &echoService{resp: Response{OK: true, OpenID: 7, TakeOver: true}}
	server, addr, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()

	client, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	resp, err := client.Upcall(Request{
		Op: OpWriteOpen, Path: "/data/x", UID: 9, Write: true, Size: 123, Mtime: 456,
	})
	if err != nil {
		t.Fatalf("upcall: %v", err)
	}
	if !resp.OK || resp.OpenID != 7 || !resp.TakeOver {
		t.Fatalf("resp = %+v", resp)
	}
	svc.mu.Lock()
	got := svc.calls[0]
	svc.mu.Unlock()
	if got.Path != "/data/x" || got.UID != 9 || !got.Write || got.Size != 123 || got.Mtime != 456 {
		t.Fatalf("request fields lost in transit: %+v", got)
	}
}

func TestTCPTransportServiceError(t *testing.T) {
	svc := &echoService{err: errors.New("daemon exploded")}
	server, addr, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()
	client, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	if _, err := client.Upcall(Request{Op: OpClose}); err == nil || err.Error() != "daemon exploded" {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPTransportManySequentialCalls(t *testing.T) {
	svc := &echoService{resp: Response{OK: true}}
	server, addr, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()
	client, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	for i := 0; i < 200; i++ {
		if _, err := client.Upcall(Request{Op: OpReadOpen, OpenID: uint64(i)}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	svc.mu.Lock()
	n := len(svc.calls)
	svc.mu.Unlock()
	if n != 200 {
		t.Fatalf("served %d calls", n)
	}
}

func TestTCPTransportConcurrentClients(t *testing.T) {
	svc := &echoService{resp: Response{OK: true}}
	server, addr, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer client.Close()
			for i := 0; i < 50; i++ {
				if _, err := client.Upcall(Request{Op: OpCheckRemove}); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestClientErrorAfterServerClose(t *testing.T) {
	svc := &echoService{resp: Response{OK: true}}
	server, addr, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	client, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	server.Close()
	if _, err := client.Upcall(Request{Op: OpClose}); !errors.Is(err, ErrTransport) {
		t.Fatalf("err after close = %v, want ErrTransport", err)
	}
}

func TestOpStrings(t *testing.T) {
	ops := []Op{OpValidateToken, OpCheckOpen, OpWriteOpen, OpClose, OpCheckRemove, OpCheckRename, OpReadOpen}
	seen := make(map[string]bool)
	for _, op := range ops {
		s := op.String()
		if s == "" || seen[s] {
			t.Errorf("op %d has bad/duplicate string %q", op, s)
		}
		seen[s] = true
	}
}
