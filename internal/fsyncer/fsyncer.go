// Package fsyncer centralizes the durability policy of the archive's disk
// writers: the chunkdisk packfile/blob store and the catalog manifest log
// share one policy knob and one group-commit implementation.
//
// Three policies:
//
//	none    writes rely on the OS flushing its page cache (the pre-PR-5
//	        behaviour). Fastest; a power loss can lose the tail of recent
//	        commits, which torn-tail recovery then trims.
//	always  every append is followed by its own fdatasync before the write
//	        is acknowledged. Strongest per-operation guarantee, one device
//	        flush per append.
//	group   appends are acknowledged only after a flush that STARTED after
//	        the append completed — but concurrent committers coalesce behind
//	        a single fdatasync (leader/follower group commit). Same power-
//	        loss guarantee as always at the commit-barrier granularity, a
//	        fraction of the flushes under concurrency.
//
// The group algorithm is round-based: a committer needing durability waits
// for the completion of any flush that began after its write. If no flush is
// running it becomes the leader of the next round; everyone who arrived while
// a round was in flight is covered by the following round, which one of them
// leads. N concurrent committers therefore cost at most two flushes per
// batch, not N.
package fsyncer

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Policy selects how writes reach stable storage.
type Policy int

const (
	// PolicyNone never issues fsync; the OS page cache is the only barrier.
	PolicyNone Policy = iota
	// PolicyGroup coalesces concurrent commit barriers behind shared flushes.
	PolicyGroup
	// PolicyAlways flushes after every write.
	PolicyAlways
)

// ParsePolicy reads a policy from its flag/config spelling. The empty string
// is PolicyNone (the zero-config default).
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none":
		return PolicyNone, nil
	case "group":
		return PolicyGroup, nil
	case "always":
		return PolicyAlways, nil
	}
	return PolicyNone, fmt.Errorf("fsyncer: unknown fsync policy %q (want none, group or always)", s)
}

// String renders the policy in its flag spelling.
func (p Policy) String() string {
	switch p {
	case PolicyGroup:
		return "group"
	case PolicyAlways:
		return "always"
	default:
		return "none"
	}
}

// Syncer applies one policy to one logical write stream (a file, or a small
// family of files flushed by one callback). Safe for concurrent use.
type Syncer struct {
	policy Policy
	delay  time.Duration
	flush  func() error
	onSync func()
	syncs  atomic.Int64

	mu        sync.Mutex
	cond      *sync.Cond
	flushing  bool
	starts    uint64 // flush rounds begun
	completes uint64 // flush rounds finished
	lastErr   error  // result of the newest completed round
}

// New builds a syncer. flush performs the physical fdatasync (it is called
// outside the syncer's lock and must be safe to call concurrently with
// writes). delay, for PolicyGroup, is how long a group leader waits before
// flushing so more committers can pile into the round; zero flushes
// immediately (back-to-back rounds already batch). onSync, if non-nil, is
// invoked once per physical flush (metrics mirroring).
func New(policy Policy, delay time.Duration, flush func() error, onSync func()) *Syncer {
	s := &Syncer{policy: policy, delay: delay, flush: flush, onSync: onSync}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Policy reports the configured policy.
func (s *Syncer) Policy() Policy { return s.policy }

// Count reports how many physical flushes have been issued.
func (s *Syncer) Count() int64 { return s.syncs.Load() }

// doFlush runs one physical flush and counts it.
func (s *Syncer) doFlush() error {
	err := s.flush()
	s.syncs.Add(1)
	if s.onSync != nil {
		s.onSync()
	}
	return err
}

// AfterWrite is the per-append hook: PolicyAlways flushes inline, the other
// policies do nothing (group defers to the commit Barrier, none to the OS).
func (s *Syncer) AfterWrite() error {
	if s.policy != PolicyAlways {
		return nil
	}
	return s.doFlush()
}

// Rounds reports how many group-commit flush rounds have completed.
func (s *Syncer) Rounds() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completes
}

// Barrier is the commit hook: under PolicyGroup it returns only after a
// flush that started after the caller's writes has completed, sharing that
// flush with every concurrent committer. PolicyAlways already flushed per
// write and PolicyNone promises nothing, so both return immediately.
func (s *Syncer) Barrier() error {
	_, err := s.BarrierRound()
	return err
}

// BarrierRound is Barrier, additionally reporting the 1-based group-commit
// round whose completion made the caller's writes durable (0 when the policy
// has no rounds — none/always don't group). Traces attach it to the fsync
// span so one commit can be placed in its round.
func (s *Syncer) BarrierRound() (uint64, error) {
	if s.policy != PolicyGroup {
		return 0, nil
	}
	s.mu.Lock()
	// Any round that BEGINS after this point covers our writes. If a round is
	// running it may have started before our last write, so we need the next
	// one; if none is running we lead it ourselves.
	need := s.starts + 1
	for {
		if s.completes >= need {
			err := s.lastErr
			s.mu.Unlock()
			return need, err
		}
		if !s.flushing {
			s.flushing = true
			s.starts++
			round := s.starts
			s.mu.Unlock()
			if s.delay > 0 {
				// Coalescing window: let more committers join this round
				// (their writes before the flush are covered for free; their
				// Barriers still wait for the next round, conservatively).
				time.Sleep(s.delay)
			}
			err := s.doFlush()
			s.mu.Lock()
			s.flushing = false
			s.completes = round
			s.lastErr = err
			s.cond.Broadcast()
			continue // the completes check returns our own round's result
		}
		s.cond.Wait()
	}
}
