package fsyncer

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"", PolicyNone, true},
		{"none", PolicyNone, true},
		{"NONE", PolicyNone, true},
		{" group ", PolicyGroup, true},
		{"always", PolicyAlways, true},
		{"fsync", PolicyNone, false},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	for _, p := range []Policy{PolicyNone, PolicyGroup, PolicyAlways} {
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round trip of %v failed: %v %v", p, back, err)
		}
	}
}

func TestAlwaysFlushesPerWrite(t *testing.T) {
	var flushes atomic.Int64
	s := New(PolicyAlways, 0, func() error { flushes.Add(1); return nil }, nil)
	for i := 0; i < 5; i++ {
		if err := s.AfterWrite(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Barrier(); err != nil {
		t.Fatal(err)
	}
	if flushes.Load() != 5 || s.Count() != 5 {
		t.Fatalf("always issued %d flushes for 5 writes (count %d)", flushes.Load(), s.Count())
	}
}

func TestNoneNeverFlushes(t *testing.T) {
	s := New(PolicyNone, 0, func() error { t.Error("flush called under PolicyNone"); return nil }, nil)
	_ = s.AfterWrite()
	_ = s.Barrier()
	if s.Count() != 0 {
		t.Fatalf("count = %d", s.Count())
	}
}

// TestGroupBarrierCoversWrites is the correctness core of group commit: every
// Barrier must return only after a flush that STARTED after the caller's
// write completed. The flush callback snapshots a shared "written" counter as
// the "durable" watermark; each committer asserts its own write is at or
// below the watermark when its Barrier returns.
func TestGroupBarrierCoversWrites(t *testing.T) {
	var written, durable atomic.Int64
	s := New(PolicyGroup, 0, func() error {
		// Simulate a slow device so rounds genuinely overlap arrivals.
		snapshot := written.Load()
		time.Sleep(200 * time.Microsecond)
		durable.Store(snapshot)
		return nil
	}, nil)

	const committers = 16
	const commitsEach = 25
	var wg sync.WaitGroup
	errs := make(chan error, committers*commitsEach)
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < commitsEach; i++ {
				my := written.Add(1)
				if err := s.Barrier(); err != nil {
					errs <- err
					return
				}
				if durable.Load() < my {
					t.Errorf("barrier returned with durable=%d < my write %d", durable.Load(), my)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	total := int64(committers * commitsEach)
	if got := s.Count(); got >= total {
		t.Fatalf("group commit did not batch: %d flushes for %d commits", got, total)
	}
	if s.Count() == 0 {
		t.Fatal("no flushes issued")
	}
}

// TestGroupPropagatesFlushErrors: a failing flush surfaces to every committer
// covered by that round, and a later healthy round clears the error.
func TestGroupPropagatesFlushErrors(t *testing.T) {
	boom := errors.New("device gone")
	var fail atomic.Bool
	s := New(PolicyGroup, 0, func() error {
		if fail.Load() {
			return boom
		}
		return nil
	}, nil)
	fail.Store(true)
	if err := s.Barrier(); !errors.Is(err, boom) {
		t.Fatalf("barrier error = %v, want %v", err, boom)
	}
	fail.Store(false)
	if err := s.Barrier(); err != nil {
		t.Fatalf("healthy round still failing: %v", err)
	}
}

// TestGroupLeaderDelayCoalesces: with a coalescing window, committers arriving
// together share very few rounds.
func TestGroupLeaderDelayCoalesces(t *testing.T) {
	s := New(PolicyGroup, 2*time.Millisecond, func() error { return nil }, nil)
	const committers = 8
	var wg sync.WaitGroup
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Barrier(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := s.Count(); got > 3 {
		t.Fatalf("%d flushes for %d simultaneous committers with a coalescing window", got, committers)
	}
}
