package cau

import (
	"bytes"
	"errors"
	"testing"

	"datalinks/internal/archive"
	"datalinks/internal/fs"
	"datalinks/internal/workload"
)

func setup(t *testing.T) (*Manager, *fs.FS, *workload.Population) {
	t.Helper()
	phys := fs.New()
	arch := archive.New(0, nil)
	pop, err := workload.Seed(phys, "/w", 2, 64, 100, workload.RNG(2))
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	return New(phys, arch, "fs1", nil), phys, pop
}

func TestCopyDoesNotLock(t *testing.T) {
	m, _, pop := setup(t)
	url := pop.URL("fs1", 0)
	c1, err := m.Copy(url)
	if err != nil {
		t.Fatalf("copy 1: %v", err)
	}
	c2, err := m.Copy(url)
	if err != nil {
		t.Fatalf("copy 2 (concurrent): %v", err)
	}
	if c1 == nil || c2 == nil {
		t.Fatal("copies nil")
	}
}

func TestBlindCheckInLastWriterWins(t *testing.T) {
	m, phys, pop := setup(t)
	url := pop.URL("fs1", 0)
	c1, _ := m.Copy(url)
	c2, _ := m.Copy(url)
	c1.Content = []byte("writer-1")
	c2.Content = []byte("writer-2")
	if err := m.CheckInBlind(c1); err != nil {
		t.Fatalf("checkin 1: %v", err)
	}
	if err := m.CheckInBlind(c2); err != nil {
		t.Fatalf("checkin 2: %v", err)
	}
	data, _ := phys.ReadFile(pop.Paths[0])
	if string(data) != "writer-2" {
		t.Fatalf("content = %q", data)
	}
	_, lost, _, _ := m.Stats()
	if lost != 1 {
		t.Fatalf("lost updates = %d, want 1 (writer-1's update was overwritten)", lost)
	}
}

func TestSafeCheckInDetectsConflict(t *testing.T) {
	m, _, pop := setup(t)
	url := pop.URL("fs1", 0)
	c1, _ := m.Copy(url)
	c2, _ := m.Copy(url)
	c1.Content = []byte("writer-1")
	c2.Content = []byte("writer-2")
	if err := m.CheckInSafe(c1, nil); err != nil {
		t.Fatalf("checkin 1: %v", err)
	}
	if err := m.CheckInSafe(c2, nil); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting checkin = %v, want ErrConflict", err)
	}
	_, lost, _, rejects := m.Stats()
	if lost != 0 || rejects != 1 {
		t.Fatalf("lost=%d rejects=%d", lost, rejects)
	}
}

func TestSafeCheckInMerges(t *testing.T) {
	m, phys, pop := setup(t)
	url := pop.URL("fs1", 0)
	c1, _ := m.Copy(url)
	c2, _ := m.Copy(url)
	c1.Content = []byte("one")
	c2.Content = []byte("two")
	if err := m.CheckInSafe(c1, nil); err != nil {
		t.Fatalf("checkin 1: %v", err)
	}
	merge := func(base, mine, theirs []byte) ([]byte, error) {
		return append(append([]byte{}, theirs...), mine...), nil
	}
	if err := m.CheckInSafe(c2, merge); err != nil {
		t.Fatalf("merged checkin: %v", err)
	}
	data, _ := phys.ReadFile(pop.Paths[0])
	if string(data) != "onetwo" {
		t.Fatalf("merged content = %q", data)
	}
	_, lost, merges, _ := m.Stats()
	if lost != 0 || merges != 1 {
		t.Fatalf("lost=%d merges=%d", lost, merges)
	}
}

func TestMergeFailureRejects(t *testing.T) {
	m, _, pop := setup(t)
	url := pop.URL("fs1", 0)
	c1, _ := m.Copy(url)
	c2, _ := m.Copy(url)
	m.CheckInBlind(c1)
	failMerge := func(base, mine, theirs []byte) ([]byte, error) {
		return nil, errors.New("cannot reconcile")
	}
	if err := m.CheckInSafe(c2, failMerge); err == nil {
		t.Fatal("failed merge accepted")
	}
}

func TestWorkCopySingleUse(t *testing.T) {
	m, _, pop := setup(t)
	c, _ := m.Copy(pop.URL("fs1", 0))
	m.CheckInBlind(c)
	if err := m.CheckInBlind(c); !errors.Is(err, ErrStale) {
		t.Fatalf("double checkin = %v", err)
	}
	c2, _ := m.Copy(pop.URL("fs1", 0))
	m.Discard(c2)
	if err := m.CheckInSafe(c2, nil); !errors.Is(err, ErrStale) {
		t.Fatalf("checkin after discard = %v", err)
	}
}

func TestCheckInArchivesVersions(t *testing.T) {
	m, _, pop := setup(t)
	arch := archive.New(0, nil)
	_ = arch
	c1, _ := m.Copy(pop.URL("fs1", 1))
	c1.Content = []byte("v1")
	m.CheckInBlind(c1)
	c2, _ := m.Copy(pop.URL("fs1", 1))
	c2.Content = []byte("v2")
	m.CheckInBlind(c2)
	vs := m.arch.Versions("fs1", pop.Paths[1])
	if len(vs) != 2 || !bytes.Equal(vs[1].Content(), []byte("v2")) {
		t.Fatalf("versions = %+v", vs)
	}
}

func TestBaseIsSnapshot(t *testing.T) {
	m, _, pop := setup(t)
	c, _ := m.Copy(pop.URL("fs1", 0))
	orig := string(c.base)
	c.Content[0] ^= 0xff // editing the copy must not change the base
	if string(c.base) != orig {
		t.Fatal("base aliased the working content")
	}
}
