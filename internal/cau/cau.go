// Package cau implements the copy-and-update discipline of §3: applications
// take private copies without locking; multiple copies of the same file can
// exist; consistency is the application's problem. The paper notes "a lost
// update can occur with this approach, if not done carefully, and it does
// occur" — this implementation offers both the careless path (blind check-in,
// last writer wins) and the careful path (version-checked check-in with a
// merge callback), so the E6 experiment can count the lost updates.
package cau

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/datalink"
	"datalinks/internal/fs"
)

// Errors.
var (
	// ErrConflict reports that the file changed since the copy was taken and
	// no merge function was supplied.
	ErrConflict = errors.New("cau: file changed since copy was taken")
	ErrStale    = errors.New("cau: working copy already checked in")
)

// MergeFunc reconciles a working copy with the current file content:
// base is the content the copy started from, mine the edited copy, theirs
// the current committed content. It returns the merged result.
type MergeFunc func(base, mine, theirs []byte) ([]byte, error)

// Manager coordinates copies of files on one file server.
type Manager struct {
	phys  *fs.FS
	arch  *archive.Store
	srv   string
	clock func() time.Time

	mu      sync.Mutex
	genOf   map[string]int64 // path -> generation, bumped on every check-in
	copies  int64
	lost    int64 // lost updates caused by blind check-ins
	merges  int64
	rejects int64
}

// New creates a copy-and-update manager.
func New(phys *fs.FS, arch *archive.Store, server string, clock func() time.Time) *Manager {
	if clock == nil {
		clock = time.Now
	}
	return &Manager{phys: phys, arch: arch, srv: server, clock: clock, genOf: make(map[string]int64)}
}

// WorkCopy is a private copy of a file.
type WorkCopy struct {
	URL     string
	Content []byte // edit freely
	base    []byte // content at copy time
	baseGen int64
	path    string
	valid   bool
}

// Copy takes a private copy. No lock is placed; any number of copies of the
// same file may exist concurrently.
func (m *Manager) Copy(url string) (*WorkCopy, error) {
	l, err := datalink.Parse(url)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	gen := m.genOf[l.Path]
	m.mu.Unlock()
	content, err := m.phys.ReadFile(l.Path)
	if err != nil {
		return nil, err
	}
	base := make([]byte, len(content))
	copy(base, content)
	m.mu.Lock()
	m.copies++
	m.mu.Unlock()
	return &WorkCopy{URL: url, Content: content, base: base, baseGen: gen, path: l.Path, valid: true}, nil
}

// CheckInBlind writes the copy back unconditionally: last writer wins. If the
// file changed since the copy was taken, the intervening update is LOST and
// counted — the §3 hazard.
func (m *Manager) CheckInBlind(wc *WorkCopy) error {
	if !wc.valid {
		return ErrStale
	}
	m.mu.Lock()
	if m.genOf[wc.path] != wc.baseGen {
		m.lost++ // someone else's committed update is being overwritten
	}
	m.genOf[wc.path]++
	gen := m.genOf[wc.path]
	m.mu.Unlock()
	wc.valid = false
	return m.writeBack(wc.path, wc.Content, gen)
}

// CheckInSafe writes the copy back only if the file is unchanged since the
// copy was taken; otherwise merge is consulted (three-way) or the check-in
// is rejected with ErrConflict.
func (m *Manager) CheckInSafe(wc *WorkCopy, merge MergeFunc) error {
	if !wc.valid {
		return ErrStale
	}
	m.mu.Lock()
	current := m.genOf[wc.path]
	if current == wc.baseGen {
		m.genOf[wc.path]++
		gen := m.genOf[wc.path]
		m.mu.Unlock()
		wc.valid = false
		return m.writeBack(wc.path, wc.Content, gen)
	}
	m.mu.Unlock()
	if merge == nil {
		m.mu.Lock()
		m.rejects++
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrConflict, wc.path)
	}
	theirs, err := m.phys.ReadFile(wc.path)
	if err != nil {
		return err
	}
	merged, err := merge(wc.base, wc.Content, theirs)
	if err != nil {
		m.mu.Lock()
		m.rejects++
		m.mu.Unlock()
		return fmt.Errorf("cau: merge failed: %w", err)
	}
	m.mu.Lock()
	m.genOf[wc.path]++
	gen := m.genOf[wc.path]
	m.merges++
	m.mu.Unlock()
	wc.valid = false
	return m.writeBack(wc.path, merged, gen)
}

// writeBack installs content and archives it as a new version.
func (m *Manager) writeBack(path string, content []byte, gen int64) error {
	if err := m.phys.WriteFile(path, content); err != nil {
		return err
	}
	return m.arch.Put(m.srv, path, archive.Version(gen), uint64(gen), content)
}

// Discard abandons a working copy.
func (m *Manager) Discard(wc *WorkCopy) { wc.valid = false }

// Stats reports copies taken, lost updates, merges, and rejected check-ins.
func (m *Manager) Stats() (copies, lost, merges, rejects int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.copies, m.lost, m.merges, m.rejects
}
