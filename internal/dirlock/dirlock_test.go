package dirlock

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestAcquireRelease(t *testing.T) {
	dir := t.TempDir()
	lk, err := Acquire(dir, "x.lock")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(lk.Path()); err != nil {
		t.Fatalf("lockfile missing: %v", err)
	}
	if _, err := Acquire(dir, "x.lock"); err == nil {
		t.Fatal("second acquire by the live owner should fail")
	}
	lk.Release()
	if _, err := os.Stat(filepath.Join(dir, "x.lock")); !os.IsNotExist(err) {
		t.Fatalf("lockfile survived release: %v", err)
	}
	lk2, err := Acquire(dir, "x.lock")
	if err != nil {
		t.Fatalf("reacquire after release: %v", err)
	}
	lk2.Release()
	lk2.Release() // idempotent
}

func TestStealsDeadPid(t *testing.T) {
	dir := t.TempDir()
	// A pid that cannot exist (beyond pid_max on any realistic config).
	stale := filepath.Join(dir, "x.lock")
	if err := os.WriteFile(stale, []byte("999999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	lk, err := Acquire(dir, "x.lock")
	if err != nil {
		t.Fatalf("steal from dead pid: %v", err)
	}
	lk.Release()
}

func TestStealsRecycledPid(t *testing.T) {
	if startToken(os.Getpid()) == "" {
		t.Skip("no /proc start tokens on this platform")
	}
	dir := t.TempDir()
	// A live pid (our own) but a start token that cannot match any real
	// incarnation: the owner pid was recycled, so the lock is stale.
	stamp := fmt.Sprintf("%d bogus-start-token\n", os.Getpid())
	if err := os.WriteFile(filepath.Join(dir, "x.lock"), []byte(stamp), 0o644); err != nil {
		t.Fatal(err)
	}
	lk, err := Acquire(dir, "x.lock")
	if err != nil {
		t.Fatalf("steal from recycled pid: %v", err)
	}
	lk.Release()
}

func TestRefusesLivePidLegacyStamp(t *testing.T) {
	dir := t.TempDir()
	// Legacy pid-only stamp of a live process: no token to disprove
	// ownership, so the acquire must refuse.
	stamp := fmt.Sprintf("%d\n", os.Getpid())
	if err := os.WriteFile(filepath.Join(dir, "x.lock"), []byte(stamp), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Acquire(dir, "x.lock"); err == nil {
		t.Fatal("acquire should refuse a live legacy owner")
	}
}

func TestSelfTokenStable(t *testing.T) {
	a, b := startToken(os.Getpid()), startToken(os.Getpid())
	if a != b {
		t.Fatalf("start token not stable: %q vs %q", a, b)
	}
}
