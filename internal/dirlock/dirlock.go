// Package dirlock implements single-owner directory lockfiles shared by the
// durable stores (the archive chunk directory and the repository WAL
// directory): two processes must never write the same directory.
//
// The lockfile records the owner's pid AND its process start token (on
// Linux, the starttime field of /proc/<pid>/stat). A bare pid is not enough
// to decide whether an owner is alive: pids recycle, so a dead owner whose
// pid was reused by an unrelated process would look alive forever and wedge
// every successor. With the start token stamped, a recycled pid is
// distinguishable from the original owner — same pid, different token —
// and the stale lock is stolen.
//
// The steal itself moves the stale lockfile aside with a rename, an atomic
// arbiter: of N concurrent stealers exactly one rename succeeds and at most
// one O_EXCL re-create wins. Remove-then-create would let a loser delete the
// winner's fresh lock.
package dirlock

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
)

// Lock is a held directory lock. Release it exactly once.
type Lock struct {
	path string
}

// Path returns the lockfile location (tests and diagnostics).
func (l *Lock) Path() string { return l.path }

// Release removes the lockfile. Safe to call on a nil or already-released
// lock.
func (l *Lock) Release() {
	if l != nil && l.path != "" {
		os.Remove(l.path)
		l.path = ""
	}
}

// Acquire takes single ownership of dir via a lockfile with the given name,
// stealing a lock whose owner process is provably gone — its pid no longer
// exists, or the pid exists but belongs to a different process incarnation
// (start-token mismatch after pid recycling).
func Acquire(dir, name string) (*Lock, error) {
	path := filepath.Join(dir, name)
	stamp := fmt.Sprintf("%d %s\n", os.Getpid(), startToken(os.Getpid()))
	for attempt := 0; ; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			_, werr := f.WriteString(stamp)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				os.Remove(path)
				return nil, fmt.Errorf("dirlock: writing %s: %w", path, werr)
			}
			return &Lock{path: path}, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("dirlock: %w", err)
		}
		raw, rerr := os.ReadFile(path)
		pid, tok := parseStamp(string(raw))
		if rerr == nil && attempt == 0 && pid > 0 && !ownerAlive(pid, tok) {
			// The owner died without releasing. Rename the stale lock aside
			// and retry the exclusive create; whether the rename succeeded
			// (we won the steal) or failed (another stealer beat us to it),
			// the retry's O_EXCL decides ownership — a second EEXIST there
			// fails fast below.
			if os.Rename(path, path+".stale") == nil {
				os.Remove(path + ".stale")
			}
			continue
		}
		return nil, fmt.Errorf("dirlock: %s is locked by pid %d (%s): the directory has a single owner process", dir, pid, path)
	}
}

// parseStamp decodes "pid" or "pid token" lockfile contents. Older lockfiles
// carry only the pid; their token comes back empty and aliveness degrades to
// the pid-only check.
func parseStamp(s string) (pid int, token string) {
	fields := strings.Fields(s)
	if len(fields) >= 1 {
		pid, _ = strconv.Atoi(fields[0])
	}
	if len(fields) >= 2 {
		token = fields[1]
	}
	return pid, token
}

// ownerAlive reports whether the stamped owner still runs: the pid must
// exist AND, when both sides have a start token, the tokens must match. A
// live pid with a different token is a recycled pid — the owner is dead.
func ownerAlive(pid int, token string) bool {
	if !pidAlive(pid) {
		return false
	}
	if token == "" {
		return true // legacy stamp: pid is all we have
	}
	cur := startToken(pid)
	if cur == "" {
		return true // cannot read the incumbent's token: refuse to steal
	}
	return cur == token
}

// pidAlive reports whether a process with the given pid exists.
func pidAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	return err == nil || err == syscall.EPERM
}

// startToken returns a token identifying one incarnation of a pid: the
// starttime field (22) of /proc/<pid>/stat, in clock ticks since boot. Two
// processes can share a pid across a recycle but not a start time. Returns
// "" where /proc is unreadable (non-Linux, permissions) — callers degrade
// to pid-only comparison.
func startToken(pid int) string {
	raw, err := os.ReadFile(fmt.Sprintf("/proc/%d/stat", pid))
	if err != nil {
		return ""
	}
	// Field 2 (comm) may contain spaces; fields count from after its
	// closing paren. starttime is field 22 overall, field 20 after comm.
	i := strings.LastIndexByte(string(raw), ')')
	if i < 0 {
		return ""
	}
	fields := strings.Fields(string(raw[i+1:]))
	if len(fields) < 20 {
		return ""
	}
	return fields[19]
}
