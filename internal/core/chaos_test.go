package core

import (
	"fmt"
	"testing"
	"time"

	"datalinks/internal/fs"
	"datalinks/internal/retry"
	"datalinks/internal/upcall"
)

// A full linked-file update lifecycle must survive an unreliable DLFS↔DLFM
// network: the resilient client absorbs injected drops and resets, and every
// committed update lands.
func TestChaosTCPLifecycle(t *testing.T) {
	// Drops and delays only: a dropped request never reaches the daemon, so
	// the retry is exactly-once from DLFM's point of view. A reset can land
	// after the daemon applied the op (lost-ack), and DLFM's close/open ops
	// are not idempotent — that at-least-once edge is exercised by the
	// upcall-level soak instead.
	ch := &upcall.Chaos{
		Seed:      1,
		DropProb:  0.12,
		DelayDist: upcall.Delay{Prob: 0.2, Min: 100 * time.Microsecond, Max: time.Millisecond},
	}
	sys, err := NewSystem(Config{
		Servers: []ServerConfig{{
			Name:       "fs1",
			TCPUpcalls: true,
			OpenWait:   time.Second,
			UpcallNet: &upcall.NetConfig{Client: upcall.ClientConfig{
				AttemptTimeout: 80 * time.Millisecond,
				OpTimeout:      10 * time.Second,
				Retry:          retry.Policy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
				DisableBreaker: true,
				Chaos:          ch,
			}},
		}},
		LockTimeout: time.Second,
	})
	if err != nil {
		t.Fatalf("new chaos system: %v", err)
	}
	defer sys.Close()
	srv, _ := sys.Server("fs1")
	if err := srv.Phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777); err != nil {
		t.Fatal(err)
	}
	if err := srv.Phys.WriteFile("/d/f.bin", []byte("v0")); err != nil {
		t.Fatal(err)
	}
	ino, _ := srv.Phys.Lookup("/d/f.bin")
	srv.Phys.Chown(ino, fs.Cred{UID: fs.Root}, alice)
	srv.Phys.Chmod(ino, fs.Cred{UID: alice}, 0o644)

	sys.DB.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES, doc_size INT)`)
	if _, err := sys.DB.Exec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.bin'), NULL)`); err != nil {
		t.Fatalf("link: %v", err)
	}
	sess := sys.NewSession(alice)
	const rounds = 8
	for i := 1; i <= rounds; i++ {
		row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`)
		if err != nil {
			t.Fatalf("round %d token: %v", i, err)
		}
		w, err := sess.OpenWrite(row[0].S)
		if err != nil {
			t.Fatalf("round %d open under chaos: %v", i, err)
		}
		if err := w.WriteAll([]byte(fmt.Sprintf("v%d under chaos", i))); err != nil {
			t.Fatalf("round %d write: %v", i, err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("round %d commit under chaos: %v", i, err)
		}
	}
	srv.DLFM.WaitArchives()
	data, _ := srv.Phys.ReadFile("/d/f.bin")
	if want := fmt.Sprintf("v%d under chaos", rounds); string(data) != want {
		t.Fatalf("final content = %q, want %q", data, want)
	}
	mrow, err := sys.DB.QueryRow(`SELECT doc_size FROM t WHERE id = 1`)
	if err != nil || mrow[0].I != int64(len(fmt.Sprintf("v%d under chaos", rounds))) {
		t.Fatalf("metadata = %v, %v", mrow, err)
	}

	if st := ch.Stats(); st.Drops == 0 {
		t.Fatalf("chaos injected nothing: %+v", st)
	}
	// The shared upcall registry surfaces the client's resilience counters.
	if srv.UpcallClient() == nil || srv.UpcallServer() == nil {
		t.Fatal("TCP plane accessors returned nil")
	}
	if srv.Transport.Metrics().Counter("upcall.retries").Value() == 0 {
		t.Fatal("no retries recorded despite injected faults")
	}
}
