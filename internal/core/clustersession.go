package core

import (
	"context"
	"fmt"

	"datalinks/internal/fs"
	"datalinks/internal/obs"
	"datalinks/internal/token"
)

// ClusterSession is an application identity working against a scale-out
// deployment. Opens resolve the path's current owner through the router; if
// a migration lands between routing and the open (the open reaches a member
// the path just left), the open retries once against the new owner — the
// same URL, the same token, a different member.
type ClusterSession struct {
	c    *Cluster
	cred fs.Cred
}

// NewSession returns a cluster session with the given uid.
func (c *Cluster) NewSession(uid fs.UID) *ClusterSession {
	return &ClusterSession{c: c, cred: fs.Cred{UID: uid}}
}

// Cred returns the session's credentials.
func (s *ClusterSession) Cred() fs.Cred { return s.cred }

func (s *ClusterSession) open(url string, mode fs.AccessMode) (*File, error) {
	server, name, err := SplitURL(url)
	if err != nil {
		return nil, err
	}
	if server != s.c.authority {
		return nil, fmt.Errorf("core: URL authority %q is not this cluster (%q)", server, s.c.authority)
	}
	cleanPath, _, _ := token.Extract(name)
	var lastErr error
	var lastOwner *FileServer
	for attempt := 0; attempt < 2; attempt++ {
		m, err := s.c.router.owner(cleanPath)
		if err != nil {
			return nil, err
		}
		if attempt > 0 && m == lastOwner {
			// Ownership did not change; the first error was real.
			return nil, lastErr
		}
		tr := m.Obs.Start("open")
		root := tr.Root()
		root.SetAttr("path", cleanPath)
		root.SetAttr("server", m.Name)
		if attempt > 0 {
			// The first owner rejected the open because the path migrated
			// away mid-flight; this attempt followed the ring forward.
			root.SetAttr("ring_forwarded", true)
		}
		fd, err := m.LFS.OpenCtx(obs.ContextWithSpan(context.Background(), root), s.cred, name, mode)
		if err != nil {
			root.SetAttr("error", err.Error())
		}
		tr.Finish()
		if err == nil {
			return &File{srv: m, path: cleanPath, fd: fd, write: mode&fs.AccessWrite != 0}, nil
		}
		lastErr, lastOwner = err, m
	}
	return nil, lastErr
}

// OpenRead opens a linked file for reading (URL from DLURLCOMPLETE).
func (s *ClusterSession) OpenRead(url string) (*File, error) { return s.open(url, fs.AccessRead) }

// OpenWrite begins an in-place update transaction (URL from
// DLURLCOMPLETEWRITE).
func (s *ClusterSession) OpenWrite(url string) (*File, error) { return s.open(url, fs.ReadWrite) }
