package core

// Shard replication and failover: with ClusterConfig.Replicas = N > 1 every
// linked path has N copies — the ring owner plus its N-1 distinct ring
// successors (ring.SuccessorsFor). The owner ships each committed version's
// delta manifest and missing chunks to the successors synchronously at the
// 2PC commit barrier (dlfm installs the shardReplicator via SetReplicator);
// acks gate on a write quorum, each replica gets retry/timeout/backoff
// through internal/retry, and a lagging replica catches up over
// archive.ExportDelta/ImportDelta — O(changed chunks), never a full copy
// unless the histories diverged. Link and unlink ride the same stream.
//
// On member death, Failover promotes the first live successor of every
// orphaned path: the successor already holds the full history and the
// promotion identity, so the path serves again after a gate + materialize —
// no AbsorbDead, no cold start, no data movement. The ring swaps to the
// survivor set and FlushReplication (the anti-entropy pass) repairs
// redundancy against the new successor lists.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/dlfm"
	"datalinks/internal/extent"
	"datalinks/internal/metrics"
	"datalinks/internal/obs"
	"datalinks/internal/retry"
	"datalinks/internal/upcall"
)

// errMemberDown marks a ship attempt that could not reach its replica
// because the member is not routable — transient during a failover window.
var errMemberDown = errors.New("core: replica member down")

// replConfig is the cluster's resolved replication policy.
type replConfig struct {
	n      int          // total copies per path, owner included (<=1: off)
	quorum int          // acks (owner included) required per commit
	policy retry.Policy // per-replica ship retry
	chaos  *upcall.Chaos
	auto   bool          // run Failover automatically when the probe sees a death
	probe  time.Duration // health-probe interval (0: no probe)
}

// shardReplicator is the dlfm.Replicator one member's commit path calls. It
// is bound to its owner id; everything else resolves through the cluster at
// ship time, so ring swaps and failovers need no rewiring.
type shardReplicator struct {
	c     *Cluster
	owner string
}

var _ dlfm.Replicator = (*shardReplicator)(nil)

func (sr *shardReplicator) ShipCommit(ctx context.Context, path string, ver int64, stateID uint64, snap *extent.Snapshot, size int64, mtime time.Time, meta dlfm.ReplicaMeta) error {
	return sr.c.shipVersion(ctx, sr.owner, path, ver, stateID, snap, mtime, meta)
}

func (sr *shardReplicator) ShipUnlink(path string) error {
	return sr.c.shipUnlink(sr.owner, path)
}

// replicaTargets returns the members that should hold replicas of path for
// the given owner: the path's ring successors, owner excluded, at most n-1.
func (c *Cluster) replicaTargets(owner, path string) []string {
	if c.repl.n <= 1 {
		return nil
	}
	succ := c.router.successorsFor(path, c.repl.n+1)
	out := make([]string, 0, c.repl.n-1)
	for _, id := range succ {
		if id == owner {
			continue
		}
		out = append(out, id)
		if len(out) == c.repl.n-1 {
			break
		}
	}
	return out
}

// memberRegistry returns a live member's metrics registry, or nil.
func (c *Cluster) memberRegistry(id string) *metrics.Registry {
	m, err := c.router.member(id)
	if err != nil {
		return nil
	}
	return m.DLFM.Metrics()
}

// shipVersion pushes one committed version to the path's replica set and
// gates on the write quorum. Called synchronously from the owner's commit
// path (and from link, with the initial version), so a nil return means a
// quorum of copies carries the version before the application's close
// returns.
func (c *Cluster) shipVersion(ctx context.Context, owner, path string, ver int64, stateID uint64, snap *extent.Snapshot, mtime time.Time, meta dlfm.ReplicaMeta) error {
	cfg := c.repl
	targets := c.replicaTargets(owner, path)
	if len(targets) == 0 && cfg.quorum <= 1 {
		return nil
	}
	start := time.Now()
	reg := c.memberRegistry(owner)
	parent := obs.SpanFrom(ctx)
	acks := 1 // the owner's own durable copy
	retried := false
	var firstErr error
	for _, id := range targets {
		sp := parent.Child("repl.ship")
		sp.SetAttr("replica", id)
		sp.SetAttr("version", ver)
		err := c.shipToReplica(ctx, owner, id, path, ver, stateID, snap, mtime, meta, &retried)
		if err != nil {
			sp.SetAttr("error", err.Error())
			if firstErr == nil {
				firstErr = fmt.Errorf("replica %s: %w", id, err)
			}
		} else {
			acks++
			ack := sp.Child("repl.ack")
			ack.SetAttr("replica", id)
			ack.End()
		}
		sp.End()
	}
	if reg != nil {
		reg.Counter("repl.ship_ms").Add(time.Since(start).Milliseconds())
		reg.Histogram("repl.ship").Observe(time.Since(start))
		if retried {
			reg.Counter("repl.quorum_waits").Inc()
		}
	}
	if acks < cfg.quorum {
		err := firstErr
		if err == nil {
			err = errMemberDown
		}
		return fmt.Errorf("core: quorum %d/%d for %s v%d: %w", acks, cfg.quorum, path, ver, err)
	}
	return nil
}

// shipToReplica delivers one frame to one replica with retry/backoff. The
// chaos hook strikes each attempt (a dropped or reset frame surfaces as the
// same ErrConnLost class the upcall wire produces), and a lagging replica is
// caught up through the archive delta path before the frame is re-applied.
func (c *Cluster) shipToReplica(ctx context.Context, owner, id, path string, ver int64, stateID uint64, snap *extent.Snapshot, mtime time.Time, meta dlfm.ReplicaMeta, retried *bool) error {
	p := c.repl.policy
	prevOnRetry := p.OnRetry
	p.OnRetry = func(attempt int, err error, delay time.Duration) {
		*retried = true
		if prevOnRetry != nil {
			prevOnRetry(attempt, err, delay)
		}
	}
	classify := func(err error) retry.Class {
		// Transport-class faults (chaos drops/resets/partitions) and a member
		// mid-failover are worth re-attempting; everything else too — the
		// attempts are bounded and a replica that just restarted may accept.
		return retry.Retryable
	}
	return retry.Do(ctx, p, classify, func(ctx context.Context) error {
		if ch := c.repl.chaos; ch != nil {
			if err := ch.Strike(); err != nil {
				return err
			}
		}
		dst, err := c.router.member(id)
		if err != nil {
			return fmt.Errorf("%w: %v", errMemberDown, err)
		}
		src, err := c.router.member(owner)
		if err != nil {
			return fmt.Errorf("%w: %v", errMemberDown, err)
		}
		err = dst.DLFM.ApplyReplicaCommit(path, ver, stateID, snap, mtime, meta)
		if errors.Is(err, dlfm.ErrReplicaLag) {
			if cerr := c.catchUpReplica(src, dst, path); cerr != nil {
				return cerr
			}
			err = dst.DLFM.ApplyReplicaCommit(path, ver, stateID, snap, mtime, meta)
		}
		return err
	})
}

// shipUnlink propagates an unlink to the replica set so a later failover
// cannot resurrect the path. Same quorum policy as commits.
func (c *Cluster) shipUnlink(owner, path string) error {
	cfg := c.repl
	targets := c.replicaTargets(owner, path)
	if len(targets) == 0 && cfg.quorum <= 1 {
		return nil
	}
	acks := 1
	var firstErr error
	for _, id := range targets {
		id := id
		err := retry.Do(context.Background(), cfg.policy, func(error) retry.Class { return retry.Retryable },
			func(context.Context) error {
				if ch := cfg.chaos; ch != nil {
					if err := ch.Strike(); err != nil {
						return err
					}
				}
				dst, err := c.router.member(id)
				if err != nil {
					return fmt.Errorf("%w: %v", errMemberDown, err)
				}
				return dst.DLFM.ApplyReplicaUnlink(path)
			})
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("replica %s: %w", id, err)
			}
		} else {
			acks++
		}
	}
	if acks < cfg.quorum {
		return fmt.Errorf("core: unlink quorum %d/%d for %s: %w", acks, cfg.quorum, path, firstErr)
	}
	return nil
}

// catchUpReplica brings dst's archive history for path up to src's: a delta
// of the missing versions when the histories share a prefix (O(changed
// chunks)), a full resync when they diverged (restore/truncate) or dst holds
// nothing yet. The repl.lag_versions counter on the owner records how many
// versions had to travel outside the synchronous ship.
func (c *Cluster) catchUpReplica(src, dst *FileServer, path string) error {
	reg := src.DLFM.Metrics()
	fullResync := func(drop bool) error {
		if drop {
			if err := dst.Archive.Drop(c.authority, path); err != nil {
				return err
			}
		}
		recs := src.Archive.ExportHistory(c.authority, path)
		if len(recs) == 0 {
			return nil
		}
		reg.Counter("repl.lag_versions").Add(int64(len(recs)))
		_, err := dst.Archive.ImportHistory(c.authority, path, recs, src.Archive.FetchBlob)
		if errors.Is(err, archive.ErrStale) {
			// Another shipper landed the history first — that is the goal.
			return nil
		}
		return err
	}

	have := int64(-1)
	if vs := dst.Archive.Versions(c.authority, path); len(vs) > 0 {
		have = int64(vs[len(vs)-1].Version)
	}
	if have < 0 {
		return fullResync(false)
	}
	recs, err := src.Archive.ExportDelta(c.authority, path, have)
	if errors.Is(err, archive.ErrChainGap) {
		return fullResync(true)
	}
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return nil
	}
	reg.Counter("repl.lag_versions").Add(int64(len(recs)))
	_, err = dst.Archive.ImportDelta(c.authority, path, recs, src.Archive.FetchBlob)
	if errors.Is(err, archive.ErrChainGap) {
		return fullResync(true)
	}
	if errors.Is(err, archive.ErrStale) {
		return nil
	}
	return err
}

// ReplicaSet reports the members that should hold copies of path: the
// current owner first, then its ring successors in promotion order.
func (c *Cluster) ReplicaSet(path string) []string {
	owner := c.router.placementID(path)
	return append([]string{owner}, c.replicaTargets(owner, path)...)
}

// FailoverReport describes what one Failover did.
type FailoverReport struct {
	Promoted []string      // paths promoted onto survivors
	Elapsed  time.Duration // gate-to-serving wall time
}

// Failover recovers a failed member's paths from their replicas: every
// orphaned path is promoted on its first live ring successor — which, by the
// successor-list property, is exactly the member the ring without the dead
// node assigns it to — then the ring swaps and the anti-entropy pass repairs
// redundancy. No AbsorbDead, no cold start from the dead member's disks: the
// survivors already hold everything. Requires Replicas > 1 and a member that
// FailServer (or the health probe) marked dead.
func (c *Cluster) Failover(id string) (*FailoverReport, error) {
	if c.repl.n <= 1 {
		return nil, fmt.Errorf("core: failover of %q needs Replicas > 1", id)
	}
	c.mu.Lock()
	_, dead := c.deadCfg[id]
	c.mu.Unlock()
	if !dead {
		return nil, fmt.Errorf("core: member %q has not failed", id)
	}
	c.router.rebalanceMu.Lock()
	defer c.router.rebalanceMu.Unlock()
	start := time.Now()
	cur := c.router.currentRing()
	if !cur.Has(id) {
		return nil, fmt.Errorf("core: member %q is not on the ring", id)
	}
	target := cur.Without(id)
	if len(target.Members()) == 0 {
		return nil, fmt.Errorf("core: no surviving members to fail %q over to", id)
	}
	rep := &FailoverReport{}
	promoted := make(map[string]bool)
	// Pass 1: each survivor promotes the orphaned paths the survivor ring
	// assigns to it — the designated first live successor.
	for _, sid := range c.router.memberIDs() {
		m, err := c.router.member(sid)
		if err != nil {
			continue
		}
		for _, p := range m.DLFM.ReplicaPaths() {
			if c.router.placementID(p) != id || target.Lookup(p) != sid {
				continue
			}
			if err := c.promotePath(m, p); err != nil {
				return rep, fmt.Errorf("core: failover %s: promote %s on %s: %w", id, p, sid, err)
			}
			promoted[p] = true
			rep.Promoted = append(rep.Promoted, p)
		}
	}
	// Pass 2: orphaned paths whose designated successor holds no replica
	// (it joined after the last ship, or lagged) promote wherever one
	// survives — the override keeps routing correct after the ring swap.
	for _, sid := range c.router.memberIDs() {
		m, err := c.router.member(sid)
		if err != nil {
			continue
		}
		for _, p := range m.DLFM.ReplicaPaths() {
			if promoted[p] || c.router.placementID(p) != id {
				continue
			}
			if err := c.promotePath(m, p); err != nil {
				return rep, fmt.Errorf("core: failover %s: promote %s on %s: %w", id, p, sid, err)
			}
			promoted[p] = true
			rep.Promoted = append(rep.Promoted, p)
		}
	}
	c.router.adoptRing(target)
	c.mu.Lock()
	delete(c.deadCfg, id) // failover supersedes AbsorbDead
	c.mu.Unlock()
	c.router.reg.Counter("repl.failovers").Inc()
	rep.Elapsed = time.Since(start)
	// Redundancy repair off the critical path measurement: the new ring
	// implies new successor sets for every promoted (and surviving) path.
	if err := c.FlushReplication(); err != nil {
		return rep, err
	}
	c.Placements()
	return rep, nil
}

// promotePath gates a path, promotes the local replica, and points the
// router at the new owner.
func (c *Cluster) promotePath(m *FileServer, path string) error {
	gate := c.router.gate(path)
	defer c.router.ungate(path, gate)
	if err := m.DLFM.PromoteReplica(path); err != nil {
		return err
	}
	c.router.setOverride(path, m.Name)
	return nil
}

// FlushReplication is the anti-entropy pass: every owner pushes each linked
// path's history to its current ring successors until the replicas match,
// and every member drops replicas it should no longer hold. This is also the
// quiesce barrier E23 relies on — a quorum-failed commit leaves replica gaps
// that no later ship heals on its own, and a ring swap strands replicas on
// retired successors.
func (c *Cluster) FlushReplication() error {
	if c.repl.n <= 1 {
		return nil
	}
	var firstErr error
	// Push: owners repair their successor sets.
	for _, sid := range c.router.memberIDs() {
		m, err := c.router.member(sid)
		if err != nil {
			continue
		}
		for _, p := range m.DLFM.LinkedPaths() {
			if c.router.placementID(p) != sid {
				continue
			}
			srcLast := int64(-1)
			if vs := m.Archive.Versions(c.authority, p); len(vs) > 0 {
				srcLast = int64(vs[len(vs)-1].Version)
			}
			if srcLast < 0 {
				continue // mode without archive history: nothing to replicate
			}
			meta, _, mtime, err := m.DLFM.FileMeta(p)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			for _, tid := range c.replicaTargets(sid, p) {
				dst, err := c.router.member(tid)
				if err != nil {
					continue
				}
				if err := c.syncReplica(m, dst, p, srcLast, mtime, meta); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("core: flush %s %s→%s: %w", p, sid, tid, err)
				}
			}
		}
	}
	// Prune: a replica stays only while its owner is reachable, still links
	// the path, and still lists this member as a successor. An unreachable
	// owner freezes pruning — a failover may be about to need the replica.
	for _, sid := range c.router.memberIDs() {
		m, err := c.router.member(sid)
		if err != nil {
			continue
		}
		for _, p := range m.DLFM.ReplicaPaths() {
			ownerID := c.router.placementID(p)
			keep := false
			if om, err := c.router.member(ownerID); err != nil {
				keep = true
			} else if ownerID != sid && om.DLFM.IsLinked(p) {
				for _, tid := range c.replicaTargets(ownerID, p) {
					if tid == sid {
						keep = true
						break
					}
				}
			}
			if !keep {
				if err := m.DLFM.DropReplica(p); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	return firstErr
}

// syncReplica makes dst's copy of path equal src's: archive history first
// (delta when possible), then the replica row. A replica that ran ahead of a
// restored owner resyncs from scratch.
func (c *Cluster) syncReplica(src, dst *FileServer, path string, srcLast int64, mtime time.Time, meta dlfm.ReplicaMeta) error {
	have := int64(-1)
	if vs := dst.Archive.Versions(c.authority, path); len(vs) > 0 {
		have = int64(vs[len(vs)-1].Version)
	}
	if have > srcLast {
		if err := dst.Archive.Drop(c.authority, path); err != nil {
			return err
		}
		have = -1
	}
	if have < srcLast {
		if err := c.catchUpReplica(src, dst, path); err != nil {
			return err
		}
	}
	return dst.DLFM.EnsureReplicaRow(path, srcLast, mtime, meta)
}
