package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"datalinks/internal/fs"
)

// newTCPSys builds a system whose DLFS reaches DLFM over a real TCP
// connection — the process split of Figure 1.
func newTCPSys(t *testing.T) (*System, *FileServer) {
	t.Helper()
	sys, err := NewSystem(Config{
		Servers: []ServerConfig{{
			Name:       "fs1",
			TCPUpcalls: true,
			OpenWait:   300 * time.Millisecond,
		}},
		LockTimeout: time.Second,
	})
	if err != nil {
		t.Fatalf("new tcp system: %v", err)
	}
	t.Cleanup(sys.Close)
	srv, _ := sys.Server("fs1")
	if err := srv.Phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777); err != nil {
		t.Fatal(err)
	}
	if err := srv.Phys.WriteFile("/d/f.bin", []byte("v0 over tcp")); err != nil {
		t.Fatal(err)
	}
	ino, _ := srv.Phys.Lookup("/d/f.bin")
	srv.Phys.Chown(ino, fs.Cred{UID: fs.Root}, alice)
	srv.Phys.Chmod(ino, fs.Cred{UID: alice}, 0o644)
	return sys, srv
}

func TestTCPUpcallFullLifecycle(t *testing.T) {
	sys, srv := newTCPSys(t)
	sys.DB.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES, doc_size INT)`)
	if _, err := sys.DB.Exec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.bin'), NULL)`); err != nil {
		t.Fatalf("link: %v", err)
	}

	// Token read over the wire.
	row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETE(doc) FROM t WHERE id = 1`)
	if err != nil {
		t.Fatalf("token: %v", err)
	}
	sess := sys.NewSession(alice)
	f, err := sess.OpenRead(row[0].S)
	if err != nil {
		t.Fatalf("open over tcp: %v", err)
	}
	data, _ := f.ReadAll()
	if string(data) != "v0 over tcp" {
		t.Fatalf("read = %q", data)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Update transaction over the wire.
	row, _ = sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`)
	w, err := sess.OpenWrite(row[0].S)
	if err != nil {
		t.Fatalf("write open over tcp: %v", err)
	}
	if err := w.WriteAll([]byte("v1 over tcp!")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("commit over tcp: %v", err)
	}
	srv.DLFM.WaitArchives()
	mrow, err := sys.DB.QueryRow(`SELECT doc_size FROM t WHERE id = 1`)
	if err != nil || mrow[0].I != int64(len("v1 over tcp!")) {
		t.Fatalf("metadata = %v, %v", mrow, err)
	}
	// The rejection paths survive the wire too. (A different uid: alice's
	// earlier token validation left her a live token entry, §4.1.)
	stranger := sys.NewSession(bob)
	if _, err := stranger.OpenRead("dlfs://fs1/d/f.bin"); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("tokenless read over tcp = %v", err)
	}
	if srv.Transport.Calls() == 0 {
		t.Fatal("no upcalls counted on the TCP transport")
	}
}

func TestTCPUpcallCrashRecoveryRedials(t *testing.T) {
	sys, _ := newTCPSys(t)
	sys.DB.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES)`)
	if _, err := sys.DB.Exec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.bin'))`); err != nil {
		t.Fatalf("link: %v", err)
	}
	sess := sys.NewSession(alice)
	row, _ := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`)
	f, err := sess.OpenWrite(row[0].S)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f.WriteAll([]byte("in flight at crash"))
	if _, err := sys.CrashAndRecoverServer("fs1"); err != nil {
		t.Fatalf("crash+recover: %v", err)
	}
	srv, _ := sys.Server("fs1")
	data, _ := srv.Phys.ReadFile("/d/f.bin")
	if !strings.HasPrefix(string(data), "v0") {
		t.Fatalf("content after recovery = %q", data)
	}
	// The recovered daemon serves on a fresh TCP endpoint.
	row, _ = sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`)
	f2, err := sess.OpenWrite(row[0].S)
	if err != nil {
		t.Fatalf("open after recovery over tcp: %v", err)
	}
	f2.WriteAll([]byte("v1 post-recovery"))
	if err := f2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
