package core

import (
	"errors"
	"testing"

	"datalinks/internal/fs"
)

// Additional File/Session surface tests: positional IO, truncation, abort
// edge cases.

func TestFilePositionalIO(t *testing.T) {
	sys, srv := newSys(t, "rfd")
	_ = srv
	sess := sys.NewSession(alice)
	wurl := urlFor(t, sys, "DLURLCOMPLETEWRITE")
	f, err := sess.OpenWrite(wurl)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Sequential writes move the offset; WriteAt does not.
	if _, err := f.Write([]byte("AAAA")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := f.WriteAt(1, []byte("B")); err != nil {
		t.Fatalf("writeat: %v", err)
	}
	if _, err := f.Write([]byte("CC")); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	if err := f.SeekTo(0); err != nil {
		t.Fatalf("seek: %v", err)
	}
	buf := make([]byte, 6)
	n, err := f.Read(buf)
	if err != nil || string(buf[:n]) != "ABAACC" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestFileTruncateShrinks(t *testing.T) {
	sys, srv := newSys(t, "rfd")
	sess := sys.NewSession(alice)
	f, err := sess.OpenWrite(urlFor(t, sys, "DLURLCOMPLETEWRITE"))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := f.WriteAll([]byte("tiny")); err != nil { // shrinks from "v0 content"
		t.Fatalf("writeall: %v", err)
	}
	attr, _ := f.Stat()
	if attr.Size != 4 {
		t.Fatalf("size = %d", attr.Size)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, _ := srv.Phys.ReadFile("/movies/clip1.mpg")
	if string(data) != "tiny" {
		t.Fatalf("content = %q", data)
	}
}

func TestTruncateOnReadHandleDenied(t *testing.T) {
	sys, _ := newSys(t, "rfd")
	sess := sys.NewSession(alice)
	f, err := sess.OpenRead("dlfs://fs1/movies/clip1.mpg")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	if err := f.Truncate(1); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("truncate on read handle = %v", err)
	}
}

func TestAbortEdgeCases(t *testing.T) {
	sys, _ := newSys(t, "rfd")
	sess := sys.NewSession(alice)
	// Abort on a read handle is an error.
	rf, err := sess.OpenRead("dlfs://fs1/movies/clip1.mpg")
	if err != nil {
		t.Fatalf("open read: %v", err)
	}
	if err := rf.Abort(); err == nil {
		t.Fatal("abort of read open accepted")
	}
	rf.Close()
	// Double abort is an error; close after abort is clean.
	wf, err := sess.OpenWrite(urlFor(t, sys, "DLURLCOMPLETEWRITE"))
	if err != nil {
		t.Fatalf("open write: %v", err)
	}
	wf.WriteAll([]byte("x"))
	if err := wf.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	if err := wf.Abort(); err == nil {
		t.Fatal("double abort accepted")
	}
	if err := wf.Close(); err != nil {
		t.Fatalf("close after abort should be clean: %v", err)
	}
}

func TestSessionCredAndServerNames(t *testing.T) {
	sys, _ := newSys(t, "rff")
	sess := sys.NewSession(alice)
	if sess.Cred().UID != alice {
		t.Fatalf("cred = %+v", sess.Cred())
	}
	names := sys.ServerNames()
	if len(names) != 1 || names[0] != "fs1" {
		t.Fatalf("servers = %v", names)
	}
	if _, err := sys.Server("missing"); err == nil {
		t.Fatal("unknown server accepted")
	}
	if _, err := sys.CrashAndRecoverServer("missing"); err == nil {
		t.Fatal("crash of unknown server accepted")
	}
}

func TestOpenBadURL(t *testing.T) {
	sys, _ := newSys(t, "rff")
	sess := sys.NewSession(alice)
	if _, err := sess.OpenRead("http://wrong/scheme"); err == nil {
		t.Fatal("bad scheme accepted")
	}
	if _, err := sess.OpenRead("dlfs://unknown-server/p"); err == nil {
		t.Fatal("unknown server accepted")
	}
	if _, err := sess.OpenRead("dlfs://fs1/does/not/exist"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("missing file should be ErrNotExist")
	}
}

func TestUserTxnAfterFinish(t *testing.T) {
	sys, _ := newSys(t, "rfd")
	u := sys.NewSession(alice).BeginUserTxn()
	if err := u.Commit(); err != nil {
		t.Fatalf("empty commit: %v", err)
	}
	if _, err := u.OpenWrite("dlfs://fs1/movies/clip1.mpg"); err == nil {
		t.Fatal("open on finished user txn accepted")
	}
	if err := u.Commit(); err == nil {
		t.Fatal("double commit accepted")
	}
	if err := u.Abort(); err == nil {
		t.Fatal("abort after commit accepted")
	}
}

func TestMetricsAggregation(t *testing.T) {
	sys, _ := newSys(t, "rdd")
	m := sys.Metrics()
	for _, key := range []string{"engine", "dlfm:fs1", "dlfs:fs1", "upcall:fs1"} {
		if _, ok := m[key]; !ok {
			t.Errorf("missing metrics registry %q", key)
		}
	}
}
