package core

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// newCluster builds an n-member scale-out deployment with a docs table.
func newCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	members := make([]ServerConfig, n)
	for i := range members {
		members[i] = ServerConfig{Name: fmt.Sprintf("fs%d", i+1), OpenWait: 300 * time.Millisecond}
	}
	c, err := NewCluster(ClusterConfig{
		Members:     members,
		LockTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("new cluster: %v", err)
	}
	t.Cleanup(c.Close)
	c.DB.MustExec(`CREATE TABLE docs (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES)`)
	return c
}

// linkDoc seeds and links one file under the cluster authority.
func linkDoc(t *testing.T, c *Cluster, id int, path, content string) {
	t.Helper()
	if err := c.SeedFile(path, []byte(content), alice); err != nil {
		t.Fatalf("seed %s: %v", path, err)
	}
	if _, err := c.DB.Exec(fmt.Sprintf(
		`INSERT INTO docs (id, doc) VALUES (%d, DLVALUE('%s'))`, id, c.URL(path))); err != nil {
		t.Fatalf("link %s: %v", path, err)
	}
}

// docURL fetches the tokenized URL for one doc row.
func docURL(t *testing.T, c *Cluster, fn string, id int) string {
	t.Helper()
	row, err := c.DB.QueryRow(fmt.Sprintf(`SELECT %s(doc) FROM docs WHERE id = %d`, fn, id))
	if err != nil {
		t.Fatalf("%s: %v", fn, err)
	}
	return row[0].S
}

// historyDigest hashes a path's full version history on its owner.
func historyDigest(t *testing.T, c *Cluster, path string) string {
	t.Helper()
	id, err := c.Owner(path)
	if err != nil {
		t.Fatalf("owner %s: %v", path, err)
	}
	m, _ := c.Member(id)
	h := sha256.New()
	for _, e := range m.Archive.Versions(c.Authority(), path) {
		fmt.Fprintf(h, "%d:%d:", e.Version, len(e.Content()))
		h.Write(e.Content())
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func clusterPaths(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("/c/f%d.bin", i)
	}
	return out
}

func TestClusterLinkRoutingAndReadWrite(t *testing.T) {
	c := newCluster(t, 3)
	paths := clusterPaths(16)
	for i, p := range paths {
		linkDoc(t, c, i, p, "v0 of "+p)
	}
	// Each link lives exactly on its ring owner.
	rg := c.Router().Ring()
	linkedTotal := 0
	for _, p := range paths {
		owner, err := c.Owner(p)
		if err != nil {
			t.Fatalf("owner %s: %v", p, err)
		}
		if want := rg.Lookup(p); owner != want {
			t.Fatalf("%s owned by %s, ring says %s", p, owner, want)
		}
		for _, id := range c.Members() {
			m, _ := c.Member(id)
			if m.DLFM.IsLinked(p) != (id == owner) {
				t.Fatalf("%s linked=%v on %s (owner %s)", p, m.DLFM.IsLinked(p), id, owner)
			}
		}
	}
	for _, n := range c.Placements() {
		linkedTotal += n
	}
	if linkedTotal != len(paths) {
		t.Fatalf("placements sum %d, want %d", linkedTotal, len(paths))
	}
	// Tokenized reads and transactional writes route through the ring.
	sess := c.NewSession(bob)
	f, err := sess.OpenRead(docURL(t, c, "DLURLCOMPLETE", 3))
	if err != nil {
		t.Fatalf("read open: %v", err)
	}
	data, _ := f.ReadAll()
	f.Close()
	if string(data) != "v0 of "+paths[3] {
		t.Fatalf("read = %q", data)
	}
	wf, err := sess.OpenWrite(docURL(t, c, "DLURLCOMPLETEWRITE", 3))
	if err != nil {
		t.Fatalf("write open: %v", err)
	}
	if err := wf.WriteAll([]byte("v1 of " + paths[3])); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := wf.Close(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	c.WaitArchives()
	owner, _ := c.Owner(paths[3])
	m, _ := c.Member(owner)
	vs := m.Archive.Versions(c.Authority(), paths[3])
	if len(vs) != 2 || string(vs[1].Content()) != "v1 of "+paths[3] {
		t.Fatalf("versions after commit: %d", len(vs))
	}
}

func TestClusterAddServerMigratesMinimally(t *testing.T) {
	c := newCluster(t, 2)
	paths := clusterPaths(24)
	sess := c.NewSession(bob)
	for i, p := range paths {
		linkDoc(t, c, i, p, "v0 of "+p)
		// Give half the files a second version so migrations carry history.
		if i%2 == 0 {
			wf, err := sess.OpenWrite(docURL(t, c, "DLURLCOMPLETEWRITE", i))
			if err != nil {
				t.Fatalf("write open %s: %v", p, err)
			}
			if err := wf.WriteAll([]byte("v1 of " + p)); err != nil {
				t.Fatal(err)
			}
			if err := wf.Close(); err != nil {
				t.Fatalf("commit %s: %v", p, err)
			}
		}
	}
	c.WaitArchives()
	before := make(map[string]string, len(paths))
	ownersBefore := make(map[string]string, len(paths))
	for _, p := range paths {
		before[p] = historyDigest(t, c, p)
		ownersBefore[p], _ = c.Owner(p)
	}

	if err := c.AddServer(ServerConfig{Name: "fs3", OpenWait: 300 * time.Millisecond}); err != nil {
		t.Fatalf("add server: %v", err)
	}

	rg := c.Router().Ring()
	moved := 0
	for _, p := range paths {
		owner, err := c.Owner(p)
		if err != nil {
			t.Fatalf("owner %s after join: %v", p, err)
		}
		if want := rg.Lookup(p); owner != want {
			t.Fatalf("%s owned by %s after join, ring says %s", p, owner, want)
		}
		if owner != ownersBefore[p] {
			// Consistent hashing: every move lands on the new member.
			if owner != "fs3" {
				t.Fatalf("%s moved between survivors %s→%s", p, ownersBefore[p], owner)
			}
			moved++
		}
		// Byte-identical histories after migration.
		if got := historyDigest(t, c, p); got != before[p] {
			t.Fatalf("history of %s changed across migration", p)
		}
	}
	if moved == 0 {
		t.Fatal("no path moved to the new member")
	}
	if got := c.Router().Metrics().Counter("ring.moves").Value(); got != int64(moved) {
		t.Fatalf("ring.moves = %d, want %d", got, moved)
	}
	// Post-join commits work wherever the path now lives.
	wf, err := sess.OpenWrite(docURL(t, c, "DLURLCOMPLETEWRITE", 1))
	if err != nil {
		t.Fatalf("post-join write open: %v", err)
	}
	if err := wf.WriteAll([]byte("post-join")); err != nil {
		t.Fatal(err)
	}
	if err := wf.Close(); err != nil {
		t.Fatalf("post-join commit: %v", err)
	}
}

func TestClusterRemoveServerDrains(t *testing.T) {
	c := newCluster(t, 3)
	paths := clusterPaths(18)
	for i, p := range paths {
		linkDoc(t, c, i, p, "v0 of "+p)
	}
	if err := c.RemoveServer("fs2"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if got := strings.Join(c.Members(), ","); got != "fs1,fs3" {
		t.Fatalf("members after remove: %s", got)
	}
	sess := c.NewSession(bob)
	for i, p := range paths {
		owner, err := c.Owner(p)
		if err != nil {
			t.Fatalf("owner %s: %v", p, err)
		}
		if owner == "fs2" {
			t.Fatalf("%s still routed to removed member", p)
		}
		f, err := sess.OpenRead(docURL(t, c, "DLURLCOMPLETE", i))
		if err != nil {
			t.Fatalf("read %s after drain: %v", p, err)
		}
		data, _ := f.ReadAll()
		f.Close()
		if string(data) != "v0 of "+p {
			t.Fatalf("%s content after drain = %q", p, data)
		}
	}
}

// TestClusterMigrateVsCommitRace runs concurrent update transactions against
// every path while a new member joins mid-stream. The invariant is the E21
// FAIL condition: no acked commit may be lost — after the dust settles each
// file's content is exactly its last successfully closed write.
func TestClusterMigrateVsCommitRace(t *testing.T) {
	c := newCluster(t, 2)
	paths := clusterPaths(12)
	for i, p := range paths {
		linkDoc(t, c, i, p, "seq -1")
	}
	var (
		mu        sync.Mutex
		lastAcked = make(map[string]int, len(paths))
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := c.NewSession(alice)
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				i := (seq*4 + w) % len(paths)
				p := paths[i]
				wf, err := sess.OpenWrite(docURL(t, c, "DLURLCOMPLETEWRITE", i))
				if err != nil {
					continue // busy/draining: not acked, retry elsewhere
				}
				mu.Lock()
				next := lastAcked[p] + 1
				mu.Unlock()
				if err := wf.WriteAll([]byte(fmt.Sprintf("path %s seq %d", p, next))); err != nil {
					wf.Abort()
					continue
				}
				if err := wf.Close(); err != nil {
					continue // commit failed: rolled back, not acked
				}
				mu.Lock()
				if next > lastAcked[p] {
					lastAcked[p] = next
				}
				mu.Unlock()
			}
		}(w)
	}
	time.Sleep(30 * time.Millisecond) // let commits flow before the join
	if err := c.AddServer(ServerConfig{Name: "fs3", OpenWait: 300 * time.Millisecond}); err != nil {
		close(stop)
		wg.Wait()
		t.Fatalf("mid-stream join: %v", err)
	}
	time.Sleep(30 * time.Millisecond) // and after it
	close(stop)
	wg.Wait()
	c.WaitArchives()

	sess := c.NewSession(bob)
	for i, p := range paths {
		f, err := sess.OpenRead(docURL(t, c, "DLURLCOMPLETE", i))
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		data, _ := f.ReadAll()
		f.Close()
		mu.Lock()
		want := fmt.Sprintf("path %s seq %d", p, lastAcked[p])
		mu.Unlock()
		if lastAcked[p] == 0 {
			continue // never successfully written
		}
		if string(data) != want {
			t.Fatalf("lost acked commit on %s: content %q, want %q", p, data, want)
		}
	}
}

// TestClusterFailAbsorbDead kills a member and recovers its namespace under
// the survivors from the durable planes (repository WAL + archive dir).
func TestClusterFailAbsorbDead(t *testing.T) {
	members := []ServerConfig{
		{Name: "fs1", OpenWait: 300 * time.Millisecond,
			RepoDir: t.TempDir(), ArchiveDir: t.TempDir()},
		{Name: "fs2", OpenWait: 300 * time.Millisecond,
			RepoDir: t.TempDir(), ArchiveDir: t.TempDir()},
	}
	c, err := NewCluster(ClusterConfig{Members: members, LockTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatalf("new cluster: %v", err)
	}
	defer c.Close()
	c.DB.MustExec(`CREATE TABLE docs (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES)`)
	paths := clusterPaths(10)
	sess := c.NewSession(alice)
	onFs2 := 0
	for i, p := range paths {
		linkDoc(t, c, i, p, "v0 of "+p)
		wf, err := sess.OpenWrite(docURL(t, c, "DLURLCOMPLETEWRITE", i))
		if err != nil {
			t.Fatalf("write open %s: %v", p, err)
		}
		if err := wf.WriteAll([]byte("v1 of " + p)); err != nil {
			t.Fatal(err)
		}
		if err := wf.Close(); err != nil {
			t.Fatalf("commit %s: %v", p, err)
		}
		if owner, _ := c.Owner(p); owner == "fs2" {
			onFs2++
		}
	}
	if onFs2 == 0 {
		t.Skip("hash placed no test path on fs2")
	}
	c.WaitArchives() // everything durable before the machine dies

	if err := c.FailServer("fs2"); err != nil {
		t.Fatalf("fail: %v", err)
	}
	// fs2's paths are dark while it is down.
	for _, p := range paths {
		if c.Router().Ring().Lookup(p) != "fs2" {
			continue
		}
		if _, err := c.Owner(p); err == nil {
			t.Fatalf("%s still resolves while its owner is dead", p)
		}
		break
	}
	if err := c.AbsorbDead("fs2"); err != nil {
		t.Fatalf("absorb: %v", err)
	}
	if got := strings.Join(c.Members(), ","); got != "fs1" {
		t.Fatalf("members after absorb: %s", got)
	}
	for i, p := range paths {
		owner, err := c.Owner(p)
		if err != nil || owner != "fs1" {
			t.Fatalf("%s owner after absorb = %s, %v", p, owner, err)
		}
		f, err := sess.OpenRead(docURL(t, c, "DLURLCOMPLETE", i))
		if err != nil {
			t.Fatalf("read %s after absorb: %v", p, err)
		}
		data, _ := f.ReadAll()
		f.Close()
		if string(data) != "v1 of "+p {
			t.Fatalf("%s after absorb = %q, want committed v1", p, data)
		}
		m, _ := c.Member("fs1")
		if vs := m.Archive.Versions(c.Authority(), p); len(vs) != 2 {
			t.Fatalf("%s history after absorb: %d versions, want 2", p, len(vs))
		}
	}
}
