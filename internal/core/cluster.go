package core

// Scale-out namespace: a Cluster runs one DataLinks authority across N file
// servers. A consistent-hash ring places every link path on a member, every
// layer resolves ownership through the router (engine link/unlink, token
// issuing, session opens, metadata write-back), and membership can change
// while commits continue: paths that land on a new owner migrate live — drain,
// freeze, archive-history handoff, bundle import, evict — behind per-path
// gates, so an update is either committed by the old owner before the move or
// by the new owner after it, never lost in between.
//
// All members run their DLFM under the cluster's shared authority name, so
// dlfs://<authority>/<path> URLs stay valid across migrations, archive
// histories carry identical keys on any member's store, and tokens (one
// shared HMAC key) validate wherever the path currently lives. Member ids
// (fs1, fs2, ...) exist one layer down: they name the ring points, the
// durable directories, and the metrics.

import (
	"fmt"
	"sync"
	"time"

	"datalinks/internal/datalink"
	"datalinks/internal/dlfm"
	"datalinks/internal/engine"
	"datalinks/internal/fs"
	"datalinks/internal/metrics"
	"datalinks/internal/obs"
	"datalinks/internal/retry"
	"datalinks/internal/ring"
	"datalinks/internal/sqlmini"
	"datalinks/internal/upcall"
)

var clusterRoot = fs.Cred{UID: fs.Root}

// ClusterConfig configures a scale-out deployment.
type ClusterConfig struct {
	// Authority is the file-server name in DATALINK URLs
	// (dlfs://<authority>/...). Defaults to "cluster".
	Authority string
	// Members configures the initial member stacks; each ServerConfig.Name is
	// the member id on the ring. At least one member is required.
	Members []ServerConfig
	// VirtualNodes per member (0 = ring.DefaultVirtualNodes).
	VirtualNodes int
	Clock        func() time.Time
	TokenKey     []byte
	TokenTTL     time.Duration
	LockTimeout  time.Duration

	// Replicas is the total number of copies of every path's archive history
	// and link row, owner included: the owner plus its Replicas-1 distinct
	// ring successors. 0 or 1 keeps single-copy behavior (no replication).
	Replicas int
	// WriteQuorum is the number of copies (owner included) that must
	// acknowledge a commit before the application's close returns. 0 means
	// all Replicas; values are clamped to [1, Replicas]. A commit that lands
	// fewer acks returns dlfm.ErrReplicationQuorum to the writer but is NOT
	// rolled back — the owner's copy is durable and anti-entropy
	// (FlushReplication) repairs the gap.
	WriteQuorum int
	// ReplicaReads lets ReadFileContent fall back to a surviving replica
	// when the owner is unreachable. Staleness is bounded: a replica can be
	// behind by at most the commits the owner had not quorum-acked. Off by
	// default — reads fail until Failover promotes.
	ReplicaReads bool
	// ReplRetry shapes per-replica ship retry (zero value = retry defaults).
	ReplRetry retry.Policy
	// ReplChaos, when set, injects transport faults into the replication
	// stream: every ship frame consults Chaos.Strike (drops, resets, delays,
	// partitions), the same fault model the upcall wire runs under.
	ReplChaos *upcall.Chaos
	// ProbeInterval enables the health probe: every interval each member is
	// checked, and one found dead gets FailServer bookkeeping (plus, with
	// AutoFailover, a Failover). 0 disables probing.
	ProbeInterval time.Duration
	// AutoFailover makes the health probe run Failover on a dead member.
	AutoFailover bool
}

// Cluster is a running scale-out deployment: one host database and engine,
// N file-server stacks behind a consistent-hash router.
type Cluster struct {
	DB     *sqlmini.DB
	Engine *engine.Engine

	authority string
	clock     func() time.Time
	key       []byte
	ttl       time.Duration
	router    *Router

	repl replConfig

	mu      sync.Mutex
	deadCfg map[string]ServerConfig // failed members awaiting AbsorbDead or Failover

	probeStop chan struct{}
	probeWG   sync.WaitGroup

	// migrateHook, when set (tests only), runs before each path migration and
	// can fail it — the crash-mid-absorb injection point.
	migrateHook func(path, src, dst string) error
}

// NewCluster builds and wires a scale-out deployment.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Authority == "" {
		cfg.Authority = "cluster"
	}
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("core: cluster needs at least one member")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if len(cfg.TokenKey) == 0 {
		cfg.TokenKey = []byte("datalinks-shared-secret")
	}
	reg := metrics.NewRegistry()
	db := sqlmini.NewDB(sqlmini.Options{Clock: cfg.Clock, LockTimeout: cfg.LockTimeout, Metrics: reg})
	eng := engine.New(db, engine.Options{Clock: cfg.Clock, Metrics: reg})

	ids := make([]string, 0, len(cfg.Members))
	for _, sc := range cfg.Members {
		if sc.Name == "" {
			return nil, fmt.Errorf("core: cluster member without a name")
		}
		ids = append(ids, sc.Name)
	}
	repl := replConfig{
		n:      cfg.Replicas,
		quorum: cfg.WriteQuorum,
		policy: cfg.ReplRetry,
		chaos:  cfg.ReplChaos,
		auto:   cfg.AutoFailover,
		probe:  cfg.ProbeInterval,
	}
	if repl.n < 1 {
		repl.n = 1
	}
	if repl.n > len(ids) {
		repl.n = len(ids)
	}
	if repl.quorum <= 0 || repl.quorum > repl.n {
		repl.quorum = repl.n
	}
	c := &Cluster{
		DB:        db,
		Engine:    eng,
		authority: cfg.Authority,
		clock:     cfg.Clock,
		key:       cfg.TokenKey,
		ttl:       cfg.TokenTTL,
		router:    newRouter(cfg.Authority, ring.New(cfg.VirtualNodes, ids...)),
		repl:      repl,
		deadCfg:   make(map[string]ServerConfig),
	}
	c.router.replicas = repl.n
	c.router.replicaReads = cfg.ReplicaReads
	for _, sc := range cfg.Members {
		fsrv, err := buildStack(sc, cfg.Authority, cfg.Clock, cfg.TokenKey, cfg.TokenTTL, eng)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.attachReplicator(fsrv)
		c.router.addMember(fsrv)
	}
	// One engine connection for the whole authority: the router resolves
	// which member processes each link.
	eng.AttachConn(cfg.Authority, c.router, cfg.TokenKey, cfg.TokenTTL)
	if repl.probe > 0 {
		c.probeStop = make(chan struct{})
		c.probeWG.Add(1)
		go c.probeLoop()
	}
	return c, nil
}

// attachReplicator installs the cluster's ship hook on one member's commit
// path (a no-op deployment-wide when Replicas <= 1).
func (c *Cluster) attachReplicator(fsrv *FileServer) {
	if c.repl.n > 1 {
		fsrv.DLFM.SetReplicator(&shardReplicator{c: c, owner: fsrv.Name})
	}
}

// Authority returns the cluster's shared file-server name.
func (c *Cluster) Authority() string { return c.authority }

// Router returns the cluster's path router.
func (c *Cluster) Router() *Router { return c.router }

// Members lists the live member ids, sorted.
func (c *Cluster) Members() []string { return c.router.memberIDs() }

// Member returns one member's stack by id.
func (c *Cluster) Member(id string) (*FileServer, error) { return c.router.member(id) }

// Owner reports which member currently serves a path.
func (c *Cluster) Owner(path string) (string, error) {
	m, err := c.router.owner(path)
	if err != nil {
		return "", err
	}
	return m.Name, nil
}

// URL returns the DATALINK URL for a path under this cluster's authority.
func (c *Cluster) URL(path string) string {
	return datalink.Link{Server: c.authority, Path: path}.URL()
}

// SeedFile creates an (unlinked) file on the member the ring places it on,
// owned by uid — the scale-out analogue of writing a file into one server's
// file system before linking it.
func (c *Cluster) SeedFile(path string, content []byte, uid fs.UID) error {
	m, err := c.router.owner(path)
	if err != nil {
		return err
	}
	if i := lastSlashIdx(path); i > 0 {
		if err := m.Phys.MkdirAll(path[:i], clusterRoot, 0o777); err != nil {
			return err
		}
	}
	if err := m.Phys.WriteFile(path, content); err != nil {
		return err
	}
	ino, err := m.Phys.Lookup(path)
	if err != nil {
		return err
	}
	if err := m.Phys.Chown(ino, clusterRoot, uid); err != nil {
		return err
	}
	return m.Phys.Chmod(ino, fs.Cred{UID: uid}, 0o644)
}

// WaitArchives drains async archiving on every member.
func (c *Cluster) WaitArchives() {
	for _, id := range c.router.memberIDs() {
		if m, err := c.router.member(id); err == nil {
			m.DLFM.WaitArchives()
		}
	}
}

// Close shuts down every member stack.
func (c *Cluster) Close() {
	if c.probeStop != nil {
		close(c.probeStop)
		c.probeWG.Wait()
		c.probeStop = nil
	}
	for _, id := range c.router.memberIDs() {
		if m, err := c.router.member(id); err == nil {
			closeStack(m)
		}
	}
}

// probeLoop is the health probe: it sweeps the member set every interval and
// converts a silently dead member (KillServer, or a crashed stack) into the
// same bookkeeping FailServer does — and, with AutoFailover, straight into a
// Failover, so orphaned paths come back without an operator in the loop.
func (c *Cluster) probeLoop() {
	defer c.probeWG.Done()
	t := time.NewTicker(c.repl.probe)
	defer t.Stop()
	for {
		select {
		case <-c.probeStop:
			return
		case <-t.C:
		}
		for _, id := range c.router.memberIDs() {
			m, err := c.router.member(id)
			if err != nil || m.DLFM.Alive() {
				continue
			}
			// Dead but still routable: record the death.
			c.router.dropMember(id)
			c.mu.Lock()
			c.deadCfg[id] = m.cfg
			c.mu.Unlock()
			c.router.reg.Counter("repl.probe_deaths").Inc()
			if c.repl.auto && c.repl.n > 1 {
				_, _ = c.Failover(id) // best effort; a retry rides the next tick
			}
		}
	}
}

// KillServer kills a member's processes without telling the cluster — the
// silent machine death FailServer's explicit bookkeeping papers over. Only
// the health probe (or a later FailServer call) notices.
func (c *Cluster) KillServer(id string) error {
	m, err := c.router.member(id)
	if err != nil {
		return err
	}
	m.DLFM.Kill()
	m.Archive.Crash()
	if m.tcpClient != nil {
		m.tcpClient.Close()
	}
	if m.tcpServer != nil {
		m.tcpServer.Close()
	}
	return nil
}

func closeStack(m *FileServer) {
	m.DLFM.WaitArchives()
	m.DLFM.Close()
	m.Archive.Close()
	if m.tcpClient != nil {
		m.tcpClient.Close()
	}
	if m.tcpServer != nil {
		m.tcpServer.Close()
	}
}

// Metrics aggregates every component registry, including the ring's.
func (c *Cluster) Metrics() map[string]*metrics.Registry {
	out := map[string]*metrics.Registry{
		"engine":              c.Engine.Metrics(),
		"ring:" + c.authority: c.router.reg,
	}
	for _, id := range c.router.memberIDs() {
		if m, err := c.router.member(id); err == nil {
			out["dlfm:"+id] = m.DLFM.Metrics()
			out["dlfs:"+id] = m.DLFS.Metrics()
			out["upcall:"+id] = m.Transport.Metrics()
		}
	}
	return out
}

// Placements counts linked paths per live member (ring-inspection tooling;
// also refreshes the ring.placement.<member> gauges).
func (c *Cluster) Placements() map[string]int {
	out := make(map[string]int)
	for _, id := range c.router.memberIDs() {
		m, err := c.router.member(id)
		if err != nil {
			continue
		}
		n := len(m.DLFM.LinkedPaths())
		out[id] = n
		g := c.router.reg.Counter("ring.placement." + id)
		g.Reset()
		g.Add(int64(n))
	}
	return out
}

// ---- Membership changes (live rebalance) ----

// AddServer grows the cluster by one member: the stack is built, the target
// ring is computed, every path whose ownership moves migrates live to the new
// member, and the ring swaps. Commits against non-moving paths proceed
// throughout; commits against a moving path drain before the move or route to
// the new owner after it.
func (c *Cluster) AddServer(sc ServerConfig) error {
	if sc.Name == "" {
		return fmt.Errorf("core: cluster member without a name")
	}
	c.router.rebalanceMu.Lock()
	defer c.router.rebalanceMu.Unlock()
	if _, err := c.router.member(sc.Name); err == nil {
		return fmt.Errorf("core: member %q already in the cluster", sc.Name)
	}
	fsrv, err := buildStack(sc, c.authority, c.clock, c.key, c.ttl, c.Engine)
	if err != nil {
		return err
	}
	c.attachReplicator(fsrv)
	target := c.router.currentRing().With(sc.Name)
	c.router.beginRebalance(target, fsrv)
	if err := c.rebalanceTo(target); err != nil {
		c.router.abortRebalance()
		// The joining member keeps any paths that already migrated onto it
		// (their overrides route there), so its stack must stay up — but if
		// nothing moved, beginRebalance's registration is rolled back too.
		if !c.hasOverrideTo(sc.Name) {
			c.router.dropMember(sc.Name)
			closeStack(fsrv)
		}
		return err
	}
	c.router.finishRebalance(target)
	if c.repl.n > 1 {
		if err := c.FlushReplication(); err != nil {
			return err
		}
	}
	c.Placements()
	return nil
}

// hasOverrideTo reports whether any path currently overrides to member id.
func (c *Cluster) hasOverrideTo(id string) bool {
	c.router.mu.Lock()
	defer c.router.mu.Unlock()
	for _, m := range c.router.overrides {
		if m == id {
			return true
		}
	}
	return false
}

// RemoveServer drains a member gracefully: every path it owns migrates to the
// ring without it, the ring swaps, and the stack shuts down.
func (c *Cluster) RemoveServer(id string) error {
	c.router.rebalanceMu.Lock()
	defer c.router.rebalanceMu.Unlock()
	m, err := c.router.member(id)
	if err != nil {
		return err
	}
	target := c.router.currentRing().Without(id)
	if len(target.Members()) == 0 {
		return fmt.Errorf("core: cannot remove the last member %q", id)
	}
	c.router.beginRebalance(target, nil)
	if err := c.rebalanceTo(target); err != nil {
		c.router.abortRebalance()
		return err
	}
	c.router.finishRebalance(target)
	c.router.dropMember(id)
	closeStack(m)
	if c.repl.n > 1 {
		if err := c.FlushReplication(); err != nil {
			return err
		}
	}
	c.Placements()
	return nil
}

// FailServer simulates a member machine dying: the DLFM is killed without a
// checkpoint, the archive drops its volatile state, TCP endpoints close, and
// the member stops serving. Its durable directories (RepoDir, ArchiveDir)
// survive for AbsorbDead.
func (c *Cluster) FailServer(id string) error {
	m, err := c.router.member(id)
	if err != nil {
		return err
	}
	m.DLFM.Kill()
	m.Archive.Crash()
	if m.tcpClient != nil {
		m.tcpClient.Close()
	}
	if m.tcpServer != nil {
		m.tcpServer.Close()
	}
	c.router.dropMember(id)
	c.mu.Lock()
	c.deadCfg[id] = m.cfg
	c.mu.Unlock()
	return nil
}

// AbsorbDead recovers a failed member's files under the surviving members:
// the dead member's durable directories are cold-started (repository WAL
// replay rebuilds the link set; linked contents materialize from the archive),
// every recovered path migrates to its owner on the ring without the dead
// member, and the member leaves the ring. Requires the failed member to have
// run with RepoDir set — a purely volatile member leaves nothing to absorb.
func (c *Cluster) AbsorbDead(id string) error {
	c.mu.Lock()
	sc, dead := c.deadCfg[id]
	c.mu.Unlock()
	if !dead {
		return fmt.Errorf("core: member %q has not failed", id)
	}
	if sc.RepoDir == "" {
		return fmt.Errorf("core: member %q has no durable repository to absorb", id)
	}
	c.router.rebalanceMu.Lock()
	defer c.router.rebalanceMu.Unlock()
	// Cold-start the dead member's durable state under a fresh stack. The
	// RAM file system died with the machine; dlfm.Open's recovery rebuilds
	// the link set from the WAL and re-materializes contents from the archive.
	fsrv, err := buildStack(sc, c.authority, c.clock, c.key, c.ttl, c.Engine)
	if err != nil {
		return fmt.Errorf("core: absorb %s: cold start: %w", id, err)
	}
	target := c.router.currentRing().Without(id)
	if len(target.Members()) == 0 {
		closeStack(fsrv)
		return fmt.Errorf("core: no surviving members to absorb %q into", id)
	}
	// Re-enter the ring long enough to drain: traffic for its paths resumes
	// against the recovered stack while they migrate out one by one.
	c.router.beginRebalance(target, fsrv)
	if err := c.rebalanceTo(target); err != nil {
		// A partial absorb must leave the cluster where a second AbsorbDead
		// can finish the job: paths that migrated keep their overrides (they
		// live on survivors now), the recovered stack closes — its durable
		// dirs hold everything that did not move — and, crucially, it leaves
		// the member table. Without the dropMember here the closed stack
		// stayed routable and the retry found the member "already present".
		c.router.abortRebalance()
		c.router.dropMember(id)
		closeStack(fsrv)
		return err
	}
	c.router.finishRebalance(target)
	c.router.dropMember(id)
	closeStack(fsrv)
	c.mu.Lock()
	delete(c.deadCfg, id)
	c.mu.Unlock()
	c.Placements()
	return nil
}

// rebalanceTo migrates every path whose owner differs between the current
// placement and the target ring. Caller holds rebalanceMu with the target
// installed as pending.
func (c *Cluster) rebalanceTo(target *ring.Ring) error {
	start := time.Now()
	for _, srcID := range c.router.memberIDs() {
		src, err := c.router.member(srcID)
		if err != nil {
			continue
		}
		for _, path := range src.DLFM.LinkedPaths() {
			dstID := target.Lookup(path)
			if dstID == srcID {
				continue
			}
			dst, err := c.router.member(dstID)
			if err != nil {
				return fmt.Errorf("core: rebalance: target member %q: %w", dstID, err)
			}
			if err := c.migratePath(src, dst, path); err != nil {
				return fmt.Errorf("core: migrate %s %s→%s: %w", path, srcID, dstID, err)
			}
		}
	}
	c.router.reg.Counter("ring.rebalance_ms").Add(time.Since(start).Milliseconds())
	c.router.reg.Histogram("ring.rebalance").Observe(time.Since(start))
	return nil
}

// migratePath moves one linked path between members: gate new traffic, drain
// and freeze the source, hand the archive history over (chunks dedup by
// hash), import the repository bundle, point the router at the destination,
// evict the source. On any failure the source remains the owner.
func (c *Cluster) migratePath(src, dst *FileServer, path string) error {
	if c.migrateHook != nil {
		if err := c.migrateHook(path, src.Name, dst.Name); err != nil {
			return err
		}
	}
	tr := src.Obs.Start("migrate")
	root := tr.Root()
	root.SetAttr("path", path)
	root.SetAttr("src", src.Name)
	root.SetAttr("dst", dst.Name)
	err := c.migratePathTraced(src, dst, path, root)
	if err != nil {
		root.SetAttr("error", err.Error())
	}
	tr.Finish()
	return err
}

func (c *Cluster) migratePathTraced(src, dst *FileServer, path string, sp *obs.Span) error {
	gate := c.router.gate(path)
	defer c.router.ungate(path, gate)

	// Drain + freeze. A long-running writer can exceed one OpenWait; retry a
	// few times before giving up on the whole rebalance.
	drain := sp.Child("drain")
	var b *dlfm.FileBundle
	var err error
	for attempt := 0; ; attempt++ {
		b, err = src.DLFM.BeginExport(path)
		if err == nil || attempt >= 2 {
			drain.SetAttr("attempts", int64(attempt+1))
			break
		}
	}
	drain.End()
	if err != nil {
		return err
	}
	defer b.Release()

	handover := sp.Child("handover")
	recs := src.Archive.ExportHistory(c.authority, path)
	if _, err := dst.Archive.ImportHistory(c.authority, path, recs, src.Archive.FetchBlob); err != nil {
		handover.End()
		src.DLFM.AbortExport(path)
		return err
	}
	if err := dst.DLFM.ImportBundle(b); err != nil {
		handover.End()
		_ = dst.Archive.Drop(c.authority, path)
		src.DLFM.AbortExport(path)
		return err
	}
	handover.End()
	// The destination owns the path from here: stragglers parked on the
	// source's freeze fail over via the session retry, new traffic routes by
	// the override until the ring swap makes it implicit.
	c.router.setOverride(path, dst.Name)
	if err := src.DLFM.EndExport(path, true); err != nil {
		return err
	}
	if err := src.Archive.Drop(c.authority, path); err != nil {
		return err
	}
	c.router.reg.Counter("ring.moves").Inc()
	return nil
}

func lastSlashIdx(p string) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return i
		}
	}
	return -1
}
