package core

// Router resolves link paths to cluster members and is the engine's Conn for
// the whole authority. Placement is: per-path override (set while a rebalance
// is partially applied) else the current ring. A path being migrated has a
// gate — lookups block until the move finishes, then resolve against the new
// placement, so no caller ever acts on the member a path is mid-flight away
// from. New links during a rebalance place by the pending ring (plus an
// immediate override), so they never need to migrate moments after linking.

import (
	"fmt"
	"sort"
	"sync"

	"datalinks/internal/datalink"
	"datalinks/internal/engine"
	"datalinks/internal/metrics"
	"datalinks/internal/ring"
	"datalinks/internal/sqlmini"
)

// Router routes paths to members. It implements engine.Conn and
// engine.Restorer for the cluster authority.
type Router struct {
	authority string
	reg       *metrics.Registry

	// rebalanceMu serializes membership changes end to end.
	rebalanceMu sync.Mutex

	mu        sync.Mutex
	ring      *ring.Ring
	pending   *ring.Ring // target ring while a rebalance is in flight
	members   map[string]*FileServer
	overrides map[string]string        // path -> member id, until the next ring swap
	moving    map[string]chan struct{} // per-path migration gates

	// Replication routing (set once by the cluster before traffic).
	replicas     int  // total copies per path; <=1 disables replica routing
	replicaReads bool // serve reads from a replica when the owner is down
}

func newRouter(authority string, r *ring.Ring) *Router {
	return &Router{
		authority: authority,
		reg:       metrics.NewRegistry(),
		ring:      r,
		members:   make(map[string]*FileServer),
		overrides: make(map[string]string),
		moving:    make(map[string]chan struct{}),
	}
}

// Metrics returns the router's registry (ring.moves, ring.forwards,
// ring.rebalance_ms, ring.placement.<member>).
func (r *Router) Metrics() *metrics.Registry { return r.reg }

// Ring returns the current routing ring.
func (r *Router) Ring() *ring.Ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring
}

func (r *Router) currentRing() *ring.Ring { return r.Ring() }

// successorsFor returns the first n distinct members on the current ring at
// or after path's hash — index 0 is the owner, the rest are its replica
// successors in promotion order.
func (r *Router) successorsFor(path string, n int) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.SuccessorsFor(path, n)
}

// placementID resolves path's assigned member — override else ring — without
// waiting out gates or requiring the member to be live. Failover uses it to
// ask "whose path was this?" about a member that is already down.
func (r *Router) placementID(path string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.overrides[path]; ok {
		return id
	}
	return r.ring.Lookup(path)
}

// adoptRing swaps the ring after a failover. Unlike finishRebalance it keeps
// the overrides the new ring does NOT imply (pass-2 promotions landed paths
// off their ring-designated successor) and drops only the ones it does, so
// the override table stays minimal without ever breaking routing.
func (r *Router) adoptRing(target *ring.Ring) {
	r.mu.Lock()
	for p, id := range r.overrides {
		if target.Lookup(p) == id {
			delete(r.overrides, p)
		}
	}
	r.ring = target
	r.pending = nil
	r.mu.Unlock()
}

func (r *Router) addMember(m *FileServer) {
	r.mu.Lock()
	r.members[m.Name] = m
	r.mu.Unlock()
}

func (r *Router) dropMember(id string) {
	r.mu.Lock()
	delete(r.members, id)
	r.mu.Unlock()
}

func (r *Router) member(id string) (*FileServer, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[id]
	if !ok {
		return nil, fmt.Errorf("core: no cluster member %q", id)
	}
	return m, nil
}

func (r *Router) memberIDs() []string {
	r.mu.Lock()
	ids := make([]string, 0, len(r.members))
	for id := range r.members {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// owner resolves the member currently serving path, waiting out any in-flight
// migration of it.
func (r *Router) owner(path string) (*FileServer, error) {
	r.mu.Lock()
	for {
		ch, inFlight := r.moving[path]
		if !inFlight {
			break
		}
		r.mu.Unlock()
		r.reg.Counter("ring.forwards").Inc()
		<-ch
		r.mu.Lock()
	}
	id, ok := r.overrides[path]
	if !ok {
		id = r.ring.Lookup(path)
	}
	m, live := r.members[id]
	r.mu.Unlock()
	if !live {
		return nil, fmt.Errorf("core: member %q (owner of %s) is down", id, path)
	}
	return m, nil
}

// place resolves the member a NEW link of path should land on. During a
// rebalance that is the pending ring's owner — recorded as an override so
// every lookup until the swap agrees.
func (r *Router) place(path string) (*FileServer, error) {
	r.mu.Lock()
	for {
		ch, inFlight := r.moving[path]
		if !inFlight {
			break
		}
		r.mu.Unlock()
		r.reg.Counter("ring.forwards").Inc()
		<-ch
		r.mu.Lock()
	}
	var id string
	if over, ok := r.overrides[path]; ok {
		id = over
	} else if r.pending != nil {
		id = r.pending.Lookup(path)
		r.overrides[path] = id
	} else {
		id = r.ring.Lookup(path)
	}
	m, live := r.members[id]
	r.mu.Unlock()
	if !live {
		return nil, fmt.Errorf("core: member %q (placement of %s) is down", id, path)
	}
	return m, nil
}

// gate marks path as migrating; owner/place lookups for it block until
// ungate. Returns the channel to close.
func (r *Router) gate(path string) chan struct{} {
	ch := make(chan struct{})
	r.mu.Lock()
	r.moving[path] = ch
	r.mu.Unlock()
	return ch
}

func (r *Router) ungate(path string, ch chan struct{}) {
	r.mu.Lock()
	if r.moving[path] == ch {
		delete(r.moving, path)
	}
	r.mu.Unlock()
	close(ch)
}

func (r *Router) setOverride(path, id string) {
	r.mu.Lock()
	r.overrides[path] = id
	r.mu.Unlock()
}

// beginRebalance installs the target ring as pending (new links place by it)
// and, when the rebalance introduces a member, makes its stack routable.
func (r *Router) beginRebalance(target *ring.Ring, joining *FileServer) {
	r.mu.Lock()
	r.pending = target
	if joining != nil {
		r.members[joining.Name] = joining
	}
	r.mu.Unlock()
}

// finishRebalance swaps the ring; every override becomes implied by the new
// ring, so the override table resets.
func (r *Router) finishRebalance(target *ring.Ring) {
	r.mu.Lock()
	r.ring = target
	r.pending = nil
	r.overrides = make(map[string]string)
	r.mu.Unlock()
}

// abortRebalance drops the pending ring after a failed rebalance. Overrides
// for paths that did migrate remain — those paths live on their new member
// and must keep routing there even under the old ring.
func (r *Router) abortRebalance() {
	r.mu.Lock()
	r.pending = nil
	r.mu.Unlock()
}

// ---- engine.Conn ----

var (
	_ engine.Conn     = (*Router)(nil)
	_ engine.Restorer = (*Router)(nil)
)

// Link routes link processing to the placing member and returns its XRM, so
// the host transaction enlists exactly the member that processed the link
// even if the ring changes between the two steps.
func (r *Router) Link(hostTxn uint64, path string, opts datalink.ColumnOptions) (sqlmini.XRM, error) {
	m, err := r.place(path)
	if err != nil {
		return nil, err
	}
	if err := m.DLFM.LinkFile(hostTxn, path, opts); err != nil {
		return nil, err
	}
	return m.DLFM, nil
}

// Unlink routes unlink processing to the owning member.
func (r *Router) Unlink(hostTxn uint64, path string) (sqlmini.XRM, error) {
	m, err := r.owner(path)
	if err != nil {
		return nil, err
	}
	if err := m.DLFM.UnlinkFile(hostTxn, path); err != nil {
		return nil, err
	}
	return m.DLFM, nil
}

// ReadFileContent reads a linked file's content from its owner; with replica
// reads enabled, an unreachable owner falls back to the newest surviving
// replica (staleness bounded by repl.lag_versions — at most the commits the
// owner had not yet quorum-acked).
func (r *Router) ReadFileContent(path string) ([]byte, error) {
	m, err := r.owner(path)
	if err != nil {
		if r.replicaReads && r.replicas > 1 {
			if data, rerr := r.readFromReplica(path); rerr == nil {
				return data, nil
			}
		}
		return nil, err
	}
	return m.DLFM.ReadFileContent(path)
}

// readFromReplica serves path from the first successor holding a replica.
func (r *Router) readFromReplica(path string) ([]byte, error) {
	for _, id := range r.successorsFor(path, r.replicas+1) {
		m, err := r.member(id)
		if err != nil {
			continue
		}
		data, err := m.DLFM.ReadReplica(path)
		if err != nil {
			continue
		}
		r.reg.Counter("repl.stale_reads").Inc()
		return data, nil
	}
	return nil, fmt.Errorf("core: no live replica of %s", path)
}

// RestoreAsOf rewinds every member's files to the state id (§4.4 coordinated
// restore, fanned out).
func (r *Router) RestoreAsOf(stateID uint64) error {
	for _, id := range r.memberIDs() {
		m, err := r.member(id)
		if err != nil {
			continue
		}
		if err := m.DLFM.RestoreAsOf(stateID); err != nil {
			return err
		}
	}
	return nil
}

// ReconcileLinks partitions the desired link set by owner and reconciles each
// member against its slice (members with no desired paths still reconcile, to
// dissolve links the restored database no longer references).
func (r *Router) ReconcileLinks(desired map[string]datalink.ColumnOptions) error {
	parts := make(map[string]map[string]datalink.ColumnOptions)
	for _, id := range r.memberIDs() {
		parts[id] = make(map[string]datalink.ColumnOptions)
	}
	for path, opts := range desired {
		m, err := r.owner(path)
		if err != nil {
			return err
		}
		parts[m.Name][path] = opts
	}
	for _, id := range r.memberIDs() {
		m, err := r.member(id)
		if err != nil {
			continue
		}
		if err := m.DLFM.ReconcileLinks(parts[id]); err != nil {
			return err
		}
	}
	return nil
}
