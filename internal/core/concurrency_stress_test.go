package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"datalinks/internal/fs"
	"datalinks/internal/workload"
)

// TestConcurrentSessionsStress is the system-level -race stress test: many
// sessions doing open-write-close on rfd and rdd files across multiple file
// servers concurrently, with link/unlink churn and shared readers running
// alongside. Afterwards the paper's core invariants (the ones
// invariants_test.go checks per step) must hold for every file:
//
//  1. file content equals the last committed version;
//  2. the newest archived version matches that content;
//  3. the database's companion size column matches the file;
//  4. no open, sync entry, or update entry leaks.
func TestConcurrentSessionsStress(t *testing.T) {
	sys, err := NewSystem(Config{
		Servers: []ServerConfig{
			{Name: "fs1", OpenWait: 10 * time.Second},
			{Name: "fs2", OpenWait: 10 * time.Second},
		},
		LockTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	sys.DB.MustExec(`CREATE TABLE srfd (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES, doc_size INT)`)
	sys.DB.MustExec(`CREATE TABLE srdd (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES, doc_size INT)`)
	sys.DB.MustExec(`CREATE TABLE schurn (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY NO)`)

	const (
		writers = 8
		iters   = 10
		readers = 4
	)

	type writerState struct {
		table     string
		server    string
		path      string
		id        int
		committed []byte
	}
	states := make([]*writerState, writers)
	for i := 0; i < writers; i++ {
		server := fmt.Sprintf("fs%d", i%2+1)
		table := "srfd"
		if i%2 == 1 {
			table = "srdd"
		}
		srv, err := sys.Server(server)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Phys.MkdirAll("/s", fs.Cred{UID: fs.Root}, 0o777); err != nil {
			t.Fatal(err)
		}
		path := fmt.Sprintf("/s/w%d.bin", i)
		content := workload.UniformContent(256, i)
		if err := srv.Phys.WriteFile(path, content); err != nil {
			t.Fatal(err)
		}
		ino, _ := srv.Phys.Lookup(path)
		srv.Phys.Chown(ino, fs.Cred{UID: fs.Root}, alice)
		srv.Phys.Chmod(ino, fs.Cred{UID: alice}, 0o644)
		if _, err := sys.DB.Exec(fmt.Sprintf(
			`INSERT INTO %s VALUES (%d, DLVALUE('dlfs://%s%s'), NULL)`, table, i, server, path)); err != nil {
			t.Fatal(err)
		}
		states[i] = &writerState{table: table, server: server, path: path, id: i, committed: content}
	}

	// A static rdd file shared by the concurrent readers (never written).
	sharedContent := workload.UniformContent(1024, 999)
	{
		srv, _ := sys.Server("fs1")
		if err := srv.Phys.WriteFile("/s/shared.bin", sharedContent); err != nil {
			t.Fatal(err)
		}
		ino, _ := srv.Phys.Lookup("/s/shared.bin")
		srv.Phys.Chown(ino, fs.Cred{UID: fs.Root}, alice)
		srv.Phys.Chmod(ino, fs.Cred{UID: alice}, 0o644)
		sys.DB.MustExec(`INSERT INTO srdd VALUES (1000, DLVALUE('dlfs://fs1/s/shared.bin'), NULL)`)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers+4)

	// Writers: repeated full update transactions on their own file, with a
	// read-back verification per iteration for the rdd ones.
	for _, st := range states {
		wg.Add(1)
		go func(st *writerState) {
			defer wg.Done()
			sess := sys.NewSession(alice)
			for k := 1; k <= iters; k++ {
				row, err := sys.DB.QueryRow(fmt.Sprintf(
					`SELECT DLURLCOMPLETEWRITE(doc) FROM %s WHERE id = %d`, st.table, st.id))
				if err != nil {
					errCh <- fmt.Errorf("writer %d url: %w", st.id, err)
					return
				}
				f, err := sess.OpenWrite(row[0].S)
				if err != nil {
					errCh <- fmt.Errorf("writer %d open: %w", st.id, err)
					return
				}
				next := workload.UniformContent(256+8*k, st.id*1000+k)
				if err := f.WriteAll(next); err != nil {
					errCh <- fmt.Errorf("writer %d write: %w", st.id, err)
					return
				}
				if err := f.Close(); err != nil {
					errCh <- fmt.Errorf("writer %d close: %w", st.id, err)
					return
				}
				st.committed = next
				if st.table == "srdd" {
					row, err := sys.DB.QueryRow(fmt.Sprintf(
						`SELECT DLURLCOMPLETE(doc) FROM srdd WHERE id = %d`, st.id))
					if err != nil {
						errCh <- fmt.Errorf("writer %d read url: %w", st.id, err)
						return
					}
					rf, err := sess.OpenRead(row[0].S)
					if err != nil {
						errCh <- fmt.Errorf("writer %d read open: %w", st.id, err)
						return
					}
					data, err := rf.ReadAll()
					rf.Close()
					if err != nil {
						errCh <- fmt.Errorf("writer %d read: %w", st.id, err)
						return
					}
					if !bytes.Equal(data, st.committed) {
						errCh <- fmt.Errorf("writer %d read back %d bytes, want %d (torn or stale)",
							st.id, len(data), len(st.committed))
						return
					}
				}
			}
		}(st)
	}

	// Shared readers: the static rdd file must always read back identical.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sess := sys.NewSession(alice)
			for k := 0; k < iters*2; k++ {
				row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETE(doc) FROM srdd WHERE id = 1000`)
				if err != nil {
					errCh <- fmt.Errorf("reader %d url: %w", r, err)
					return
				}
				f, err := sess.OpenRead(row[0].S)
				if err != nil {
					errCh <- fmt.Errorf("reader %d open: %w", r, err)
					return
				}
				data, err := f.ReadAll()
				f.Close()
				if err != nil {
					errCh <- fmt.Errorf("reader %d read: %w", r, err)
					return
				}
				if !bytes.Equal(data, sharedContent) {
					errCh <- fmt.Errorf("reader %d saw modified shared content", r)
					return
				}
			}
		}(r)
	}

	// Link/unlink churn: each churner repeatedly links and unlinks its own
	// file through SQL insert/delete, exercising the 2PC sub-transaction
	// path concurrently with the updates above.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			server := fmt.Sprintf("fs%d", c%2+1)
			srv, err := sys.Server(server)
			if err != nil {
				errCh <- err
				return
			}
			path := fmt.Sprintf("/s/churn%d.bin", c)
			if err := srv.Phys.WriteFile(path, []byte("churn content")); err != nil {
				errCh <- err
				return
			}
			ino, _ := srv.Phys.Lookup(path)
			srv.Phys.Chown(ino, fs.Cred{UID: fs.Root}, alice)
			srv.Phys.Chmod(ino, fs.Cred{UID: alice}, 0o644)
			id := 2000 + c
			for k := 0; k < iters; k++ {
				if _, err := sys.DB.Exec(fmt.Sprintf(
					`INSERT INTO schurn VALUES (%d, DLVALUE('dlfs://%s%s'))`, id, server, path)); err != nil {
					errCh <- fmt.Errorf("churner %d link: %w", c, err)
					return
				}
				if _, err := sys.DB.Exec(fmt.Sprintf(`DELETE FROM schurn WHERE id = %d`, id)); err != nil {
					errCh <- fmt.Errorf("churner %d unlink: %w", c, err)
					return
				}
			}
		}(c)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Drain archives, then check the invariants for every writer file.
	for _, name := range []string{"fs1", "fs2"} {
		srv, _ := sys.Server(name)
		srv.DLFM.WaitArchives()
	}
	for _, st := range states {
		srv, _ := sys.Server(st.server)
		data, err := srv.Phys.ReadFile(st.path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, st.committed) {
			t.Fatalf("%s: content differs from last committed version", st.path)
		}
		vs := srv.Archive.Versions(st.server, st.path)
		if len(vs) == 0 || !bytes.Equal(vs[len(vs)-1].Content(), st.committed) {
			t.Fatalf("%s: newest archived version does not match last committed content", st.path)
		}
		row, err := sys.DB.QueryRow(fmt.Sprintf(`SELECT doc_size FROM %s WHERE id = %d`, st.table, st.id))
		if err != nil {
			t.Fatal(err)
		}
		if row[0].I != int64(len(st.committed)) {
			t.Fatalf("%s: doc_size=%d, want %d", st.path, row[0].I, len(st.committed))
		}
	}
	// Nothing leaked: no opens, no update entries, no sync writers.
	for _, name := range []string{"fs1", "fs2"} {
		srv, _ := sys.Server(name)
		if n := srv.DLFM.OpenCount(); n != 0 {
			t.Fatalf("%s: %d opens leaked", name, n)
		}
		if inflight := srv.DLFM.UpdatesInFlight(); len(inflight) != 0 {
			t.Fatalf("%s: update entries leaked: %v", name, inflight)
		}
		if n := srv.LFS.OpenCount(); n != 0 {
			t.Fatalf("%s: %d LFS descriptors leaked", name, n)
		}
	}
	// The churned rows are all unlinked again.
	for c := 0; c < 4; c++ {
		server := fmt.Sprintf("fs%d", c%2+1)
		srv, _ := sys.Server(server)
		if srv.DLFM.IsLinked(fmt.Sprintf("/s/churn%d.bin", c)) {
			t.Fatalf("churn file %d still linked after final unlink", c)
		}
	}
}
