package core

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"datalinks/internal/retry"
	"datalinks/internal/upcall"
)

// newReplCluster builds an n-member deployment with replication on.
func newReplCluster(t *testing.T, n int, mut func(*ClusterConfig)) *Cluster {
	t.Helper()
	members := make([]ServerConfig, n)
	for i := range members {
		members[i] = ServerConfig{Name: fmt.Sprintf("fs%d", i+1), OpenWait: 300 * time.Millisecond}
	}
	cfg := ClusterConfig{
		Members:     members,
		LockTimeout: 500 * time.Millisecond,
		Replicas:    2,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("new cluster: %v", err)
	}
	t.Cleanup(c.Close)
	c.DB.MustExec(`CREATE TABLE docs (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES)`)
	return c
}

// memberDigest hashes one member's full version history of a path — owner and
// replica digests must be byte-identical after quiesce.
func memberDigest(t *testing.T, c *Cluster, id, path string) string {
	t.Helper()
	m, err := c.Member(id)
	if err != nil {
		t.Fatalf("member %s: %v", id, err)
	}
	h := sha256.New()
	for _, e := range m.Archive.Versions(c.Authority(), path) {
		fmt.Fprintf(h, "%d:%d:", e.Version, len(e.Content()))
		h.Write(e.Content())
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// assertReplicasConverged checks every path's replica set holds an identical
// history to its owner.
func assertReplicasConverged(t *testing.T, c *Cluster, paths []string) {
	t.Helper()
	for _, p := range paths {
		set := c.ReplicaSet(p)
		owner := set[0]
		want := memberDigest(t, c, owner, p)
		for _, id := range set[1:] {
			if got := memberDigest(t, c, id, p); got != want {
				t.Fatalf("%s: replica %s digest %s != owner %s digest %s", p, id, got[:12], owner, want[:12])
			}
		}
	}
}

// commitUpdate writes one new version through the full session protocol.
func commitUpdate(t *testing.T, c *Cluster, docID int, content string) error {
	t.Helper()
	sess := c.NewSession(alice)
	wf, err := sess.OpenWrite(docURL(t, c, "DLURLCOMPLETEWRITE", docID))
	if err != nil {
		return err
	}
	if err := wf.WriteAll([]byte(content)); err != nil {
		wf.Close()
		return err
	}
	return wf.Close()
}

func TestReplicationShipsOnCommit(t *testing.T) {
	c := newReplCluster(t, 3, nil)
	paths := clusterPaths(8)
	for i, p := range paths {
		linkDoc(t, c, i, p, "v0 of "+p)
		if err := commitUpdate(t, c, i, "v1 of "+p); err != nil {
			t.Fatalf("commit %s: %v", p, err)
		}
	}
	c.WaitArchives()
	for _, p := range paths {
		set := c.ReplicaSet(p)
		if len(set) != 2 || set[0] == set[1] {
			t.Fatalf("%s replica set %v, want 2 distinct members", p, set)
		}
		owner, _ := c.Owner(p)
		if set[0] != owner {
			t.Fatalf("%s replica set %v does not lead with owner %s", p, set, owner)
		}
		m, _ := c.Member(set[1])
		// The replica acked both the link (v0) and the commit (v1)
		// synchronously — no anti-entropy pass has run.
		if got := m.DLFM.ReplicaVersion(p); got != 1 {
			t.Fatalf("%s replica on %s at version %d, want 1", p, set[1], got)
		}
	}
	assertReplicasConverged(t, c, paths)
}

func TestReplicationRetriesThroughChaos(t *testing.T) {
	chaos := &upcall.Chaos{Seed: 42, DropProb: 0.2, ResetProb: 0.1}
	c := newReplCluster(t, 3, func(cfg *ClusterConfig) {
		cfg.WriteQuorum = 2
		cfg.ReplChaos = chaos
		cfg.ReplRetry = retry.Policy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	})
	paths := clusterPaths(6)
	for i, p := range paths {
		linkDoc(t, c, i, p, "v0 of "+p)
	}
	// Every commit must reach its quorum through dropped and reset frames —
	// the retry discipline absorbs the chaos.
	for round := 1; round <= 4; round++ {
		for i, p := range paths {
			if err := commitUpdate(t, c, i, fmt.Sprintf("v%d of %s", round, p)); err != nil {
				t.Fatalf("commit round %d %s: %v", round, p, err)
			}
		}
	}
	st := chaos.Stats()
	if st.Drops == 0 && st.Resets == 0 {
		t.Fatal("chaos injected nothing — the test exercised no faults")
	}
	chaos.Enable(false)
	c.WaitArchives()
	if err := c.FlushReplication(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	assertReplicasConverged(t, c, paths)
}

func TestPartitionFailsQuorumWithoutRollback(t *testing.T) {
	chaos := &upcall.Chaos{Seed: 7}
	c := newReplCluster(t, 3, func(cfg *ClusterConfig) {
		cfg.WriteQuorum = 2
		cfg.ReplChaos = chaos
		cfg.ReplRetry = retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	})
	p := clusterPaths(1)[0]
	linkDoc(t, c, 0, p, "v0 of "+p)
	c.WaitArchives()

	chaos.Partition(true)
	err := commitUpdate(t, c, 0, "v1 of "+p)
	if err == nil {
		t.Fatal("commit reached quorum across a full partition")
	}
	if !strings.Contains(err.Error(), "under-replicated") {
		t.Fatalf("partitioned commit error = %v, want under-replicated", err)
	}
	// The owner committed and archived the version — the writer's rejection
	// reports under-replication, not loss.
	c.WaitArchives()
	owner, _ := c.Owner(p)
	m, _ := c.Member(owner)
	vs := m.Archive.Versions(c.Authority(), p)
	if len(vs) != 2 || string(vs[1].Content()) != "v1 of "+p {
		t.Fatalf("owner history after partitioned commit: %d versions", len(vs))
	}
	// Heal: anti-entropy repairs the replica gap no later commit would fill.
	chaos.Partition(false)
	chaos.Enable(false)
	if err := c.FlushReplication(); err != nil {
		t.Fatalf("flush after heal: %v", err)
	}
	assertReplicasConverged(t, c, []string{p})
}

func TestFailoverPromotesReplicas(t *testing.T) {
	c := newReplCluster(t, 3, nil)
	paths := clusterPaths(12)
	for i, p := range paths {
		linkDoc(t, c, i, p, "v0 of "+p)
		if err := commitUpdate(t, c, i, "v1 of "+p); err != nil {
			t.Fatalf("commit %s: %v", p, err)
		}
	}
	c.WaitArchives()
	victim := ""
	for _, p := range paths {
		owner, _ := c.Owner(p)
		victim = owner
		break
	}
	victimPaths := map[string]bool{}
	secondSucc := map[string]string{}
	for _, p := range paths {
		if owner, _ := c.Owner(p); owner == victim {
			victimPaths[p] = true
			secondSucc[p] = c.ReplicaSet(p)[1]
		}
	}
	if len(victimPaths) == 0 {
		t.Skipf("hash placed no test path on %s", victim)
	}

	if err := c.FailServer(victim); err != nil {
		t.Fatalf("fail: %v", err)
	}
	rep, err := c.Failover(victim)
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	promoted := map[string]bool{}
	for _, p := range rep.Promoted {
		promoted[p] = true
	}
	for p := range victimPaths {
		if !promoted[p] {
			t.Fatalf("%s (owned by dead %s) was not promoted; report %v", p, victim, rep.Promoted)
		}
	}
	// Failover needs no AbsorbDead: the dead member's durable state was never
	// touched (these members have none), yet every path serves its last
	// acked version — from the promoted replica, on the ring successor.
	sess := c.NewSession(alice)
	for i, p := range paths {
		owner, err := c.Owner(p)
		if err != nil {
			t.Fatalf("%s unowned after failover: %v", p, err)
		}
		if owner == victim {
			t.Fatalf("%s still routed to dead %s", p, victim)
		}
		if victimPaths[p] && owner != secondSucc[p] {
			t.Fatalf("%s promoted on %s, want second successor %s", p, owner, secondSucc[p])
		}
		f, err := sess.OpenRead(docURL(t, c, "DLURLCOMPLETE", i))
		if err != nil {
			t.Fatalf("read %s after failover: %v", p, err)
		}
		data, _ := f.ReadAll()
		f.Close()
		if string(data) != "v1 of "+p {
			t.Fatalf("%s after failover = %q, want committed v1", p, data)
		}
	}
	// Writes continue, version numbering unbroken, and the new owner ships
	// to the new successor set.
	for i, p := range paths {
		if err := commitUpdate(t, c, i, "v2 of "+p); err != nil {
			t.Fatalf("post-failover commit %s: %v", p, err)
		}
	}
	c.WaitArchives()
	if err := c.FlushReplication(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for _, p := range paths {
		owner, _ := c.Owner(p)
		m, _ := c.Member(owner)
		vs := m.Archive.Versions(c.Authority(), p)
		if len(vs) != 3 || string(vs[2].Content()) != "v2 of "+p {
			t.Fatalf("%s history after failover: %d versions", p, len(vs))
		}
	}
	assertReplicasConverged(t, c, paths)
	if c.router.reg.Counter("repl.failovers").Value() != 1 {
		t.Fatal("repl.failovers counter not incremented")
	}
}

func TestPartitionDuringFailover(t *testing.T) {
	chaos := &upcall.Chaos{Seed: 11}
	c := newReplCluster(t, 3, func(cfg *ClusterConfig) {
		cfg.WriteQuorum = 1
		cfg.ReplChaos = chaos
		cfg.ReplRetry = retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	})
	paths := clusterPaths(8)
	for i, p := range paths {
		linkDoc(t, c, i, p, "v0 of "+p)
		if err := commitUpdate(t, c, i, "v1 of "+p); err != nil {
			t.Fatalf("commit %s: %v", p, err)
		}
	}
	c.WaitArchives()
	victim := c.Members()[0]
	if err := c.FailServer(victim); err != nil {
		t.Fatal(err)
	}
	// The replication stream partitions while the failover runs: promotion is
	// local (replica + row are already on the successor), so paths still come
	// back — only the redundancy repair is deferred.
	chaos.Partition(true)
	if _, err := c.Failover(victim); err != nil {
		t.Logf("failover under partition (repair deferred): %v", err)
	}
	sess := c.NewSession(alice)
	for i, p := range paths {
		owner, err := c.Owner(p)
		if err != nil || owner == victim {
			t.Fatalf("%s not served after failover under partition: owner=%s err=%v", p, owner, err)
		}
		f, err := sess.OpenRead(docURL(t, c, "DLURLCOMPLETE", i))
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		data, _ := f.ReadAll()
		f.Close()
		if string(data) != "v1 of "+p {
			t.Fatalf("%s = %q after failover under partition", p, data)
		}
	}
	chaos.Partition(false)
	chaos.Enable(false)
	if err := c.FlushReplication(); err != nil {
		t.Fatalf("flush after heal: %v", err)
	}
	assertReplicasConverged(t, c, paths)
}

func TestReplicaReadsWhenOwnerDown(t *testing.T) {
	c := newReplCluster(t, 3, func(cfg *ClusterConfig) {
		cfg.WriteQuorum = 1
		cfg.ReplicaReads = true
	})
	paths := clusterPaths(6)
	for i, p := range paths {
		linkDoc(t, c, i, p, "v0 of "+p)
		if err := commitUpdate(t, c, i, "v1 of "+p); err != nil {
			t.Fatalf("commit %s: %v", p, err)
		}
	}
	c.WaitArchives()
	p := paths[0]
	owner, _ := c.Owner(p)
	if err := c.FailServer(owner); err != nil {
		t.Fatal(err)
	}
	// No failover has run — the owner is simply dark. The read falls back to
	// the replica, stale-bounded by the quorum-acked version.
	data, err := c.router.ReadFileContent(p)
	if err != nil {
		t.Fatalf("replica read with owner down: %v", err)
	}
	if string(data) != "v1 of "+p {
		t.Fatalf("replica read = %q, want v1", data)
	}
	if c.router.reg.Counter("repl.stale_reads").Value() == 0 {
		t.Fatal("repl.stale_reads not counted")
	}
}

// TestAbsorbDeadCrashMidAbsorb kills the absorbing process partway through
// (the migrate hook fails after two paths) and asserts a second AbsorbDead
// converges: every path lands exactly once, with its full history, and the
// half-recovered stack is neither routable nor double-imported.
func TestAbsorbDeadCrashMidAbsorb(t *testing.T) {
	members := []ServerConfig{
		{Name: "fs1", OpenWait: 300 * time.Millisecond,
			RepoDir: t.TempDir(), ArchiveDir: t.TempDir()},
		{Name: "fs2", OpenWait: 300 * time.Millisecond,
			RepoDir: t.TempDir(), ArchiveDir: t.TempDir()},
	}
	c, err := NewCluster(ClusterConfig{Members: members, LockTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatalf("new cluster: %v", err)
	}
	defer c.Close()
	c.DB.MustExec(`CREATE TABLE docs (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES)`)
	paths := clusterPaths(12)
	sess := c.NewSession(alice)
	onFs2 := 0
	for i, p := range paths {
		linkDoc(t, c, i, p, "v0 of "+p)
		wf, err := sess.OpenWrite(docURL(t, c, "DLURLCOMPLETEWRITE", i))
		if err != nil {
			t.Fatalf("write open %s: %v", p, err)
		}
		if err := wf.WriteAll([]byte("v1 of " + p)); err != nil {
			t.Fatal(err)
		}
		if err := wf.Close(); err != nil {
			t.Fatalf("commit %s: %v", p, err)
		}
		if owner, _ := c.Owner(p); owner == "fs2" {
			onFs2++
		}
	}
	if onFs2 < 3 {
		t.Skipf("hash placed only %d paths on fs2", onFs2)
	}
	c.WaitArchives()
	if err := c.FailServer("fs2"); err != nil {
		t.Fatal(err)
	}

	// First absorb dies after two successful migrations.
	injected := errors.New("absorbing process killed")
	migrated := 0
	c.migrateHook = func(path, src, dst string) error {
		if src != "fs2" {
			return nil
		}
		if migrated >= 2 {
			return injected
		}
		migrated++
		return nil
	}
	if err := c.AbsorbDead("fs2"); !errors.Is(err, injected) {
		t.Fatalf("first absorb: %v, want injected kill", err)
	}
	// The half-recovered stack must NOT stay routable: its processes are
	// closed, so leaving it in the member table would wedge every lookup
	// that resolves to it — and block the retry.
	if got := strings.Join(c.Members(), ","); got != "fs1" {
		t.Fatalf("members after crashed absorb: %s, want fs1", got)
	}
	// Paths that migrated before the crash serve from fs1 already.
	served := 0
	for _, p := range paths {
		if owner, err := c.Owner(p); err == nil && owner == "fs1" {
			served++
		}
	}
	if served < 2 {
		t.Fatalf("only %d paths served after partial absorb, want the 2 migrated ones at least", served)
	}

	// Second absorb converges.
	c.migrateHook = nil
	if err := c.AbsorbDead("fs2"); err != nil {
		t.Fatalf("second absorb: %v", err)
	}
	m, _ := c.Member("fs1")
	linked := m.DLFM.LinkedPaths()
	if len(linked) != len(paths) {
		t.Fatalf("fs1 links %d paths after convergence, want %d", len(linked), len(paths))
	}
	for i, p := range paths {
		owner, err := c.Owner(p)
		if err != nil || owner != "fs1" {
			t.Fatalf("%s owner = %s, %v", p, owner, err)
		}
		// No lost versions, no double-imported versions: exactly v0 and v1.
		vs := m.Archive.Versions(c.Authority(), p)
		if len(vs) != 2 {
			t.Fatalf("%s history: %d versions, want 2", p, len(vs))
		}
		if string(vs[0].Content()) != "v0 of "+p || string(vs[1].Content()) != "v1 of "+p {
			t.Fatalf("%s history content corrupted", p)
		}
		f, err := sess.OpenRead(docURL(t, c, "DLURLCOMPLETE", i))
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		data, _ := f.ReadAll()
		f.Close()
		if string(data) != "v1 of "+p {
			t.Fatalf("%s = %q after convergence", p, data)
		}
	}
}

func TestKillServerProbeAutoFailover(t *testing.T) {
	c := newReplCluster(t, 3, func(cfg *ClusterConfig) {
		cfg.WriteQuorum = 1
		cfg.ProbeInterval = 20 * time.Millisecond
		cfg.AutoFailover = true
	})
	paths := clusterPaths(8)
	for i, p := range paths {
		linkDoc(t, c, i, p, "v0 of "+p)
		if err := commitUpdate(t, c, i, "v1 of "+p); err != nil {
			t.Fatalf("commit %s: %v", p, err)
		}
	}
	c.WaitArchives()
	victim, _ := c.Owner(paths[0])
	// Silent machine death: no FailServer bookkeeping. The probe must notice
	// and fail the member over on its own.
	if err := c.KillServer(victim); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		allServed := true
		for _, p := range paths {
			owner, err := c.Owner(p)
			if err != nil || owner == victim {
				allServed = false
				break
			}
		}
		if allServed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("auto failover did not restore service within 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	sess := c.NewSession(alice)
	for i, p := range paths {
		f, err := sess.OpenRead(docURL(t, c, "DLURLCOMPLETE", i))
		if err != nil {
			t.Fatalf("read %s after auto failover: %v", p, err)
		}
		data, _ := f.ReadAll()
		f.Close()
		if string(data) != "v1 of "+p {
			t.Fatalf("%s = %q after auto failover", p, data)
		}
	}
	if c.router.reg.Counter("repl.failovers").Value() == 0 {
		t.Fatal("repl.failovers not counted by the probe-driven failover")
	}
}
