// Package core assembles the paper's system and packages its primary
// contribution — database-managed in-place update of external files — behind
// a small API: a System wiring the host database, DataLinks engine, and any
// number of file servers (DLFM + DLFS + physical FS + archive), and Sessions
// through which applications read and update linked files with transactional
// semantics (open = begin, close = commit, §3.1/§4.2).
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/datalink"
	"datalinks/internal/dlfm"
	"datalinks/internal/dlfs"
	"datalinks/internal/engine"
	"datalinks/internal/fs"
	"datalinks/internal/fsyncer"
	"datalinks/internal/metrics"
	"datalinks/internal/obs"
	"datalinks/internal/sqlmini"
	"datalinks/internal/token"
	"datalinks/internal/upcall"
	"datalinks/internal/vfs"
)

// ServerConfig configures one file server of a System.
type ServerConfig struct {
	Name string
	// UpcallLatency simulates the DLFS↔DLFM IPC cost (0 = in-process direct).
	UpcallLatency time.Duration
	// UpcallWidth bounds concurrent DLFS→DLFM upcalls on this server (0 =
	// unbounded). The bound encloses UpcallLatency, so it models a finite
	// IPC channel — per-server capacity that scale-out experiments divide
	// work across.
	UpcallWidth int
	// ArchiveLatency simulates the archive device (§4.4).
	ArchiveLatency time.Duration
	// Strict enables the §4.5 strict-link-check extension on this server.
	Strict bool
	// OpenWait bounds DLFM open-approval waits.
	OpenWait time.Duration
	// TCPUpcalls routes DLFS→DLFM upcalls over a real TCP loopback
	// connection (gob-encoded), matching the kernel/daemon process split of
	// Figure 1, instead of direct in-process calls.
	TCPUpcalls bool
	// UpcallNet tunes the TCP upcall plane: client retry/backoff/deadlines/
	// breaker and server backpressure limits, plus an optional Chaos fault
	// injector (nil: production defaults). With TCPUpcalls unset, only the
	// Chaos injector applies (wrapped around the in-process service).
	UpcallNet *upcall.NetConfig
	// ArchiveDir enables the durable archive tier: sealed chunks persist to
	// this real directory (hash-addressed) and only a bounded LRU of hot
	// chunks stays in memory. Empty keeps the archive memory-only.
	ArchiveDir string
	// ArchiveMemoryBudget bounds the archive's hot-chunk LRU in bytes
	// (<= 0: chunkdisk default). Only meaningful with ArchiveDir set.
	ArchiveMemoryBudget int64
	// ArchiveGCInterval runs the archive's background dead-chunk sweeper
	// this often (0: explicit GCNow only). Only meaningful with ArchiveDir.
	ArchiveGCInterval time.Duration
	// ArchiveCheckpointEvery bounds the archive's delta chains: a full
	// manifest at least every this many versions (<= 0: the archive default).
	ArchiveCheckpointEvery int
	// ArchiveCompress flate-compresses spilled archive chunks when that
	// shrinks them. Only meaningful with ArchiveDir set.
	ArchiveCompress bool
	// ArchiveFsync selects the archive tier's durability policy: "" or
	// "none" (rely on the OS page cache — the default), "group" (concurrent
	// committers coalesce behind shared fdatasyncs), or "always" (every
	// append flushes inline). Only meaningful with ArchiveDir set.
	ArchiveFsync string
	// ArchiveFsyncMaxDelay, under the group policy, is the group-commit
	// leader's coalescing window before it flushes.
	ArchiveFsyncMaxDelay time.Duration
	// ArchivePackThreshold batches archive blobs at or below this size into
	// packfiles (0: the default of one extent chunk; negative: packing
	// disabled, one file per blob). Only meaningful with ArchiveDir set.
	ArchivePackThreshold int64
	// QuarantineTTL expires quarantined in-flight versions after this age
	// (0: keep forever); QuarantineGCInterval runs the background sweeper
	// (0: explicit SweepQuarantine only).
	QuarantineTTL        time.Duration
	QuarantineGCInterval time.Duration
	// RepoDir enables the durable repository plane: the DLFM repository's
	// write-ahead log lives in CRC-framed segment files under this real
	// directory, with periodic checkpoint snapshots (repo.snap) anchoring
	// restart recovery. Empty keeps the repository WAL in memory.
	RepoDir string
	// RepoFsync selects the repository WAL durability policy: "" or "none"
	// (rely on the OS page cache), "group" (coalesced fdatasyncs), or
	// "always" (every flush syncs inline). Only meaningful with RepoDir set.
	RepoFsync string
	// RepoFsyncMaxDelay, under the group policy, is the group-commit
	// leader's coalescing window before it flushes.
	RepoFsyncMaxDelay time.Duration
	// RepoCheckpointBytes takes a repository checkpoint after roughly this
	// many logged bytes (<= 0: the dlfm default).
	RepoCheckpointBytes int64
	// Trace enables request-scoped tracing on this server: every top-level
	// operation (open, read, write, commit/close, link/unlink, migration
	// move) records a span tree into a bounded per-server ring, stitched
	// across the upcall wire when TCPUpcalls is set.
	Trace bool
	// TraceCapacity bounds the ring of retained completed traces (<= 0: the
	// obs default of 512).
	TraceCapacity int
	// SlowOpThreshold emits any trace whose root exceeds it as a one-line
	// JSON slow_op event to SlowOpLog, span tree included. Setting it
	// implies tracing even when Trace is false.
	SlowOpThreshold time.Duration
	// SlowOpLog receives slow_op events (nil discards them).
	SlowOpLog io.Writer
}

// Config configures a System.
type Config struct {
	Servers     []ServerConfig
	Clock       func() time.Time
	TokenKey    []byte
	TokenTTL    time.Duration
	LockTimeout time.Duration
}

// FileServer bundles one file server's stack.
type FileServer struct {
	Name      string
	Phys      *fs.FS
	Archive   *archive.Store
	DLFM      *dlfm.Server
	DLFS      *dlfs.DLFS
	LFS       *vfs.LFS // applications' mount (through DLFS)
	NativeLFS *vfs.LFS // bypass mount (native-FS baseline measurements)
	Transport *upcall.Transport
	// Obs is the server's tracer (nil unless Trace or SlowOpThreshold is
	// configured). Both the session side and the daemon side of this server
	// record into it, so one commit's spans land in one trace.
	Obs *obs.Tracer
	// Recovery is non-nil when opening a durable repository directory ran
	// cold-start recovery instead of a fresh boot.
	Recovery *dlfm.RecoveryReport
	cfg      ServerConfig

	// TCP deployment resources (nil for in-process upcalls).
	tcpServer *upcall.Server
	tcpClient *upcall.Client
}

// UpcallServer exposes the TCP upcall server (nil for in-process upcalls).
// Experiments use it to drain the daemon gracefully and read its
// backpressure counters.
func (f *FileServer) UpcallServer() *upcall.Server { return f.tcpServer }

// UpcallClient exposes the resilient TCP upcall client (nil for in-process
// upcalls). Experiments use it for the retry/giveup/breaker counters.
func (f *FileServer) UpcallClient() *upcall.Client { return f.tcpClient }

// System is a running DataLinks deployment.
type System struct {
	DB      *sqlmini.DB
	Engine  *engine.Engine
	clock   func() time.Time
	key     []byte
	ttl     time.Duration
	mu      sync.Mutex
	servers map[string]*FileServer
}

// NewSystem builds and wires a complete deployment.
func NewSystem(cfg Config) (*System, error) {
	if len(cfg.Servers) == 0 {
		cfg.Servers = []ServerConfig{{Name: "fs1"}}
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if len(cfg.TokenKey) == 0 {
		cfg.TokenKey = []byte("datalinks-shared-secret")
	}
	reg := metrics.NewRegistry()
	db := sqlmini.NewDB(sqlmini.Options{Clock: cfg.Clock, LockTimeout: cfg.LockTimeout, Metrics: reg})
	eng := engine.New(db, engine.Options{Clock: cfg.Clock, Metrics: reg})
	sys := &System{
		DB:      db,
		Engine:  eng,
		clock:   cfg.Clock,
		key:     cfg.TokenKey,
		ttl:     cfg.TokenTTL,
		servers: make(map[string]*FileServer),
	}
	for _, sc := range cfg.Servers {
		if _, err := sys.addServer(sc); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// addServer constructs one file server stack and attaches it to the engine.
func (sys *System) addServer(sc ServerConfig) (*FileServer, error) {
	fsrv, err := buildStack(sc, sc.Name, sys.clock, sys.key, sys.ttl, sys.Engine)
	if err != nil {
		return nil, err
	}
	sys.mu.Lock()
	sys.servers[sc.Name] = fsrv
	sys.mu.Unlock()
	sys.Engine.AttachFileServer(fsrv.DLFM, sys.key, sys.ttl)
	return fsrv, nil
}

// buildStack constructs one file server stack: physical FS, archive tier,
// DLFM (durable repository when configured), and the DLFS upcall plane.
// dlfmName is the name the DLFM registers under — a System passes the
// server's own name, a Cluster passes the shared authority so DATALINK URLs,
// archive keys, and host metadata stay identical across members.
func buildStack(sc ServerConfig, dlfmName string, clock func() time.Time, key []byte, ttl time.Duration, host dlfm.Host) (*FileServer, error) {
	phys := fs.NewWithClock(clock)
	fsyncPolicy, err := fsyncer.ParsePolicy(sc.ArchiveFsync)
	if err != nil {
		return nil, fmt.Errorf("core: server %s: %w", sc.Name, err)
	}
	// One registry per server, shared between DLFM and the archive tier so
	// the fsync/pack counters surface next to the upcall/archive ones.
	reg := metrics.NewRegistry()
	var tracer *obs.Tracer
	if sc.Trace || sc.SlowOpThreshold > 0 {
		var slowLog *obs.Logger
		if sc.SlowOpLog != nil {
			slowLog = obs.NewLogger(sc.SlowOpLog, obs.LevelDebug)
		}
		tracer = obs.New(obs.Config{
			Capacity:        sc.TraceCapacity,
			SlowOpThreshold: sc.SlowOpThreshold,
			Log:             slowLog,
		})
	}
	arch, err := archive.NewTiered(sc.ArchiveLatency, clock, archive.TierConfig{
		Dir:             sc.ArchiveDir,
		MemoryBudget:    sc.ArchiveMemoryBudget,
		GCInterval:      sc.ArchiveGCInterval,
		CheckpointEvery: sc.ArchiveCheckpointEvery,
		Compress:        sc.ArchiveCompress,
		Fsync:           fsyncPolicy,
		FsyncMaxDelay:   sc.ArchiveFsyncMaxDelay,
		PackThreshold:   sc.ArchivePackThreshold,
		Metrics:         reg,
	})
	if err != nil {
		return nil, err
	}
	repoFsync, err := fsyncer.ParsePolicy(sc.RepoFsync)
	if err != nil {
		arch.Close()
		return nil, fmt.Errorf("core: server %s: %w", sc.Name, err)
	}
	srv, recovery, err := dlfm.Open(dlfm.Config{
		Name:                dlfmName,
		Phys:                phys,
		Archive:             arch,
		Host:                host,
		TokenKey:            key,
		Clock:               clock,
		OpenWait:            sc.OpenWait,
		TokenTTL:            ttl,
		QuarantineTTL:       sc.QuarantineTTL,
		GCInterval:          sc.QuarantineGCInterval,
		Metrics:             reg,
		RepoDir:             sc.RepoDir,
		RepoFsync:           repoFsync,
		RepoFsyncMaxDelay:   sc.RepoFsyncMaxDelay,
		RepoCheckpointBytes: sc.RepoCheckpointBytes,
		Tracer:              tracer,
	})
	if err != nil {
		arch.Close()
		return nil, err
	}
	fsrv := &FileServer{
		Name:      sc.Name,
		Phys:      phys,
		Archive:   arch,
		DLFM:      srv,
		NativeLFS: vfs.NewLFS(vfs.NewPassthrough(phys)),
		Obs:       tracer,
		Recovery:  recovery,
		cfg:       sc,
	}
	if err := wireUpcallPlane(fsrv, srv, sc); err != nil {
		arch.Close()
		return nil, err
	}
	return fsrv, nil
}

// wireUpcallPlane attaches the DLFS↔DLFM upcall channel to a file server:
// direct in-process calls by default, or the hardened TCP plane (framed
// protocol, pooled client with retry/backoff/deadlines/breaker, bounded
// server with graceful drain) when the config asks for the daemon
// deployment. One registry is shared by the client, the server, and the
// measuring transport so the resilience counters surface together.
func wireUpcallPlane(fsrv *FileServer, srv *dlfm.Server, sc ServerConfig) error {
	upReg := metrics.NewRegistry()
	var netCfg upcall.NetConfig
	if sc.UpcallNet != nil {
		netCfg = *sc.UpcallNet
	}
	var svc upcall.Service = srv
	switch {
	case sc.TCPUpcalls:
		if netCfg.Server.Metrics == nil {
			netCfg.Server.Metrics = upReg
		}
		if netCfg.Server.Tracer == nil {
			// Adopt inbound trace contexts into the same ring the session
			// side records into, stitching client and daemon spans.
			netCfg.Server.Tracer = fsrv.Obs
		}
		if netCfg.Client.Metrics == nil {
			netCfg.Client.Metrics = upReg
		}
		tcpServer, addr, err := upcall.ServeConfig(srv, "127.0.0.1:0", netCfg.Server)
		if err != nil {
			return fmt.Errorf("core: upcall server: %w", err)
		}
		client, err := upcall.DialConfig(addr, netCfg.Client)
		if err != nil {
			tcpServer.Close()
			return fmt.Errorf("core: upcall dial: %w", err)
		}
		fsrv.tcpServer = tcpServer
		fsrv.tcpClient = client
		svc = client
	case netCfg.Client.Chaos != nil:
		// In-process deployment with fault injection: no retry layer in
		// front, so injected faults surface directly to DLFS callers.
		svc = netCfg.Client.Chaos.WrapService(srv)
	}
	transport := upcall.NewInProcWidth(svc, sc.UpcallLatency, sc.UpcallWidth, upReg)
	mount := dlfs.New(dlfs.Config{
		Phys:    fsrv.Phys,
		Upcall:  transport,
		DLFMUid: srv.UID(),
		Strict:  sc.Strict,
	})
	fsrv.DLFS = mount
	fsrv.LFS = vfs.NewLFS(mount)
	fsrv.Transport = transport
	return nil
}

// Server returns a file server by name.
func (sys *System) Server(name string) (*FileServer, error) {
	sys.mu.Lock()
	defer sys.mu.Unlock()
	s, ok := sys.servers[name]
	if !ok {
		return nil, fmt.Errorf("core: no file server %q", name)
	}
	return s, nil
}

// ServerNames lists the file servers.
func (sys *System) ServerNames() []string {
	sys.mu.Lock()
	defer sys.mu.Unlock()
	out := make([]string, 0, len(sys.servers))
	for n := range sys.servers {
		out = append(out, n)
	}
	return out
}

// Close shuts down background work on every server.
func (sys *System) Close() {
	sys.mu.Lock()
	defer sys.mu.Unlock()
	for _, s := range sys.servers {
		s.DLFM.WaitArchives()
		s.DLFM.Close()
		s.Archive.Close()
		if s.tcpClient != nil {
			s.tcpClient.Close()
		}
		if s.tcpServer != nil {
			s.tcpServer.Close()
		}
	}
}

// Crash simulates a whole-process kill (kill -9 of the deployment): every
// file server's volatile state is dropped on the floor — no final
// checkpoint, no archive drain, no clean WAL close. Only what the durable
// planes already wrote (repository WAL segments + snapshot under RepoDir,
// archive chunks + catalog under ArchiveDir) survives for a later NewSystem
// over the same directories to cold-start from. The RAM-backed physical file
// systems die with the process.
func (sys *System) Crash() {
	sys.mu.Lock()
	defer sys.mu.Unlock()
	for _, s := range sys.servers {
		s.DLFM.Kill()
		s.Archive.Crash()
		if s.tcpClient != nil {
			s.tcpClient.Close()
		}
		if s.tcpServer != nil {
			s.tcpServer.Close()
		}
	}
	sys.servers = make(map[string]*FileServer)
}

// CrashAndRecoverServer simulates a crash of one file server machine and
// runs DLFM restart recovery (§4.2/§4.4): in-flight updates roll back to
// the last committed version, in-doubt sub-transactions resolve against the
// host, pending archives complete.
func (sys *System) CrashAndRecoverServer(name string) (*dlfm.RecoveryReport, error) {
	sys.mu.Lock()
	old, ok := sys.servers[name]
	sys.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no file server %q", name)
	}
	durable := old.DLFM.CrashRepo()
	// The crash also kills the daemon's TCP endpoints.
	if old.tcpClient != nil {
		old.tcpClient.Close()
	}
	if old.tcpServer != nil {
		old.tcpServer.Close()
	}
	repoFsync, err := fsyncer.ParsePolicy(old.cfg.RepoFsync)
	if err != nil {
		return nil, fmt.Errorf("core: server %s: %w", name, err)
	}
	srv, rep, err := dlfm.Recover(dlfm.Config{
		Name:                name,
		Phys:                old.Phys, // the disk survives
		Archive:             old.Archive,
		Host:                sys.Engine,
		TokenKey:            sys.key,
		Clock:               sys.clock,
		OpenWait:            old.cfg.OpenWait,
		TokenTTL:            sys.ttl,
		QuarantineTTL:       old.cfg.QuarantineTTL,
		GCInterval:          old.cfg.QuarantineGCInterval,
		RepoDir:             old.cfg.RepoDir,
		RepoFsync:           repoFsync,
		RepoFsyncMaxDelay:   old.cfg.RepoFsyncMaxDelay,
		RepoCheckpointBytes: old.cfg.RepoCheckpointBytes,
		Tracer:              old.Obs, // the ring of past traces survives the crash
	}, durable)
	if err != nil {
		return nil, err
	}
	fresh := &FileServer{
		Name:      name,
		Phys:      old.Phys,
		Archive:   old.Archive,
		DLFM:      srv,
		NativeLFS: old.NativeLFS,
		Obs:       old.Obs,
		cfg:       old.cfg,
	}
	if err := wireUpcallPlane(fresh, srv, old.cfg); err != nil {
		return nil, err
	}
	sys.mu.Lock()
	sys.servers[name] = fresh
	sys.mu.Unlock()
	sys.Engine.AttachFileServer(srv, sys.key, sys.ttl)
	return rep, nil
}

// RecoverHost crashes and recovers the host database, refreshing the
// system's handle to the rebuilt instance.
func (sys *System) RecoverHost() error {
	if err := sys.Engine.RecoverHost(); err != nil {
		return err
	}
	sys.mu.Lock()
	sys.DB = sys.Engine.DB()
	sys.mu.Unlock()
	return nil
}

// Session is an application identity working against the system.
type Session struct {
	sys  *System
	cred fs.Cred
}

// NewSession returns a session with the given uid.
func (sys *System) NewSession(uid fs.UID) *Session {
	return &Session{sys: sys, cred: fs.Cred{UID: uid}}
}

// Cred returns the session's credentials.
func (s *Session) Cred() fs.Cred { return s.cred }

// errAborted marks a file handle whose update was explicitly aborted.
var errAborted = errors.New("core: update aborted")

// File is an open linked file. For write opens, the open..close window is a
// file-update transaction: Close commits, Abort rolls back to the last
// committed version.
type File struct {
	sess    *Session
	srv     *FileServer
	path    string
	fd      vfs.FD
	write   bool
	aborted bool
}

// SplitURL decomposes a (possibly token-carrying) DATALINK URL into server,
// path and the name to hand to the file system API (path plus token).
func SplitURL(url string) (server, fsName string, err error) {
	clean, tok, hasTok := token.Extract(url)
	l, err := datalink.Parse(clean)
	if err != nil {
		return "", "", err
	}
	name := l.Path
	if hasTok {
		name = token.Embed(l.Path, tok)
	}
	return l.Server, name, nil
}

// open opens a URL through the DataLinks file system.
func (s *Session) open(url string, mode fs.AccessMode) (*File, error) {
	server, name, err := SplitURL(url)
	if err != nil {
		return nil, err
	}
	srv, err := s.sys.Server(server)
	if err != nil {
		return nil, err
	}
	cleanPath, _, _ := token.Extract(name)
	tr := srv.Obs.Start("open")
	root := tr.Root()
	root.SetAttr("path", cleanPath)
	root.SetAttr("server", server)
	fd, err := srv.LFS.OpenCtx(obs.ContextWithSpan(context.Background(), root), s.cred, name, mode)
	if err != nil {
		root.SetAttr("error", err.Error())
		tr.Finish()
		return nil, err
	}
	tr.Finish()
	return &File{sess: s, srv: srv, path: cleanPath, fd: fd, write: mode&fs.AccessWrite != 0}, nil
}

// OpenRead opens a linked file for reading. The URL should come from
// DLURLCOMPLETE (it carries the read token when one is required).
func (s *Session) OpenRead(url string) (*File, error) { return s.open(url, fs.AccessRead) }

// OpenWrite begins an in-place update transaction on a linked file. The URL
// should come from DLURLCOMPLETEWRITE (it carries the write token).
func (s *Session) OpenWrite(url string) (*File, error) { return s.open(url, fs.ReadWrite) }

// trace records one data-plane operation as a single-span trace (these ops
// never upcall, so the trace is flat). The returned func finishes it.
func (f *File) trace(op string) func(err error) {
	if !f.srv.Obs.Enabled() {
		return func(error) {}
	}
	tr := f.srv.Obs.Start(op)
	tr.Root().SetAttr("path", f.path)
	return func(err error) {
		if err != nil {
			tr.Root().SetAttr("error", err.Error())
		}
		tr.Finish()
	}
}

// Read reads from the current offset.
func (f *File) Read(p []byte) (int, error) {
	done := f.trace("read")
	n, err := f.srv.LFS.Read(f.fd, p)
	done(err)
	return n, err
}

// ReadAll reads the whole file.
func (f *File) ReadAll() ([]byte, error) {
	done := f.trace("read")
	b, err := f.srv.LFS.ReadAll(f.fd)
	done(err)
	return b, err
}

// Write writes at the current offset.
func (f *File) Write(p []byte) (int, error) {
	done := f.trace("write")
	n, err := f.srv.LFS.Write(f.fd, p)
	done(err)
	return n, err
}

// WriteAt writes at an absolute offset.
func (f *File) WriteAt(off int64, p []byte) (int, error) {
	done := f.trace("write")
	n, err := f.srv.LFS.WriteAt(f.fd, off, p)
	done(err)
	return n, err
}

// ReadAt reads at an absolute offset without moving the file offset.
func (f *File) ReadAt(off int64, p []byte) (int, error) {
	done := f.trace("read")
	n, err := f.srv.LFS.ReadAt(f.fd, off, p)
	done(err)
	return n, err
}

// Truncate sets the file length, like ftruncate(2) on the open write
// descriptor (write permission was established at open).
func (f *File) Truncate(size int64) error {
	if !f.write {
		return fs.ErrPermission
	}
	ino, err := f.srv.Phys.Lookup(f.path)
	if err != nil {
		return err
	}
	return f.srv.Phys.Truncate(ino, size)
}

// Stat returns the file's attributes.
func (f *File) Stat() (fs.Attr, error) { return f.srv.LFS.Stat(f.fd) }

// SeekTo repositions the descriptor to an absolute offset.
func (f *File) SeekTo(off int64) error { return f.srv.LFS.Seek(f.fd, off) }

// Path returns the server-relative path of the file.
func (f *File) Path() string { return f.path }

// Close ends the access. For a write open this commits the file-update
// transaction: metadata updates in the host database, a new version is
// archived, the file returns to its at-rest protection (§4.2–4.4).
func (f *File) Close() error {
	if f.aborted {
		// The update was rolled back; releasing the descriptor will fail its
		// close upcall (the open is gone at DLFM) — expected.
		_ = f.srv.LFS.Close(f.fd)
		return nil
	}
	op := "close"
	if f.write {
		op = "commit" // a write close commits the file-update transaction
	}
	tr := f.srv.Obs.Start(op)
	root := tr.Root()
	root.SetAttr("path", f.path)
	err := f.srv.LFS.CloseCtx(obs.ContextWithSpan(context.Background(), root), f.fd)
	if err != nil {
		root.SetAttr("error", err.Error())
	}
	tr.Finish()
	return err
}

// Abort rolls the in-place update back: the last committed version is
// restored from the archive and the in-flight content is quarantined (§4.2).
func (f *File) Abort() error {
	if !f.write {
		return errors.New("core: Abort on a read open")
	}
	if f.aborted {
		return errAborted
	}
	if err := f.srv.DLFM.AbortUpdateByPath(f.path); err != nil {
		return err
	}
	f.aborted = true
	_ = f.srv.LFS.Close(f.fd) // descriptor cleanup; upcall failure expected
	return nil
}

// WriteAll replaces the whole content of the file.
func (f *File) WriteAll(p []byte) error {
	if _, err := f.WriteAt(0, p); err != nil {
		return err
	}
	attr, err := f.Stat()
	if err != nil {
		return err
	}
	if attr.Size > int64(len(p)) {
		return f.Truncate(int64(len(p)))
	}
	return nil
}

// UserTxn groups several file updates as sub-transactions of one logical
// user transaction (§3.1's nested-transaction sketch): Commit closes the
// files in order; the first failure aborts every remaining in-flight update.
type UserTxn struct {
	sess  *Session
	files []*File
	done  bool
}

// BeginUserTxn starts a multi-file update transaction.
func (s *Session) BeginUserTxn() *UserTxn { return &UserTxn{sess: s} }

// OpenWrite begins a file-update sub-transaction under this user transaction.
func (u *UserTxn) OpenWrite(url string) (*File, error) {
	if u.done {
		return nil, errors.New("core: user transaction finished")
	}
	f, err := u.sess.OpenWrite(url)
	if err != nil {
		return nil, err
	}
	u.files = append(u.files, f)
	return f, nil
}

// Commit commits every sub-transaction in open order. On the first failure
// the remaining in-flight updates are rolled back and an error reporting
// both committed and aborted paths is returned.
func (u *UserTxn) Commit() error {
	if u.done {
		return errors.New("core: user transaction finished")
	}
	u.done = true
	var committed []string
	for i, f := range u.files {
		if err := f.Close(); err != nil {
			var abortedPaths []string
			for _, rest := range u.files[i+1:] {
				if aerr := rest.Abort(); aerr == nil {
					abortedPaths = append(abortedPaths, rest.path)
				}
			}
			return fmt.Errorf("core: user transaction failed at %s (%w); committed=[%s] aborted=[%s]",
				f.path, err, strings.Join(committed, ","), strings.Join(abortedPaths, ","))
		}
		committed = append(committed, f.path)
	}
	return nil
}

// Abort rolls back every in-flight sub-transaction.
func (u *UserTxn) Abort() error {
	if u.done {
		return errors.New("core: user transaction finished")
	}
	u.done = true
	var firstErr error
	for _, f := range u.files {
		if err := f.Abort(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Metrics aggregates the registries of every component (status tooling).
func (sys *System) Metrics() map[string]*metrics.Registry {
	sys.mu.Lock()
	defer sys.mu.Unlock()
	out := map[string]*metrics.Registry{"engine": sys.Engine.Metrics()}
	for n, s := range sys.servers {
		out["dlfm:"+n] = s.DLFM.Metrics()
		out["dlfs:"+n] = s.DLFS.Metrics()
		out["upcall:"+n] = s.Transport.Metrics()
	}
	return out
}
