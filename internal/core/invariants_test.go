package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"datalinks/internal/fs"
	"datalinks/internal/workload"
)

// op is one step of a random schedule against a single rdd-linked file.
type op byte

const (
	opCommit op = iota // open, write new version, close (commit)
	opAbort            // open, write garbage, explicit abort
	opCrash            // open, write garbage, crash the file server
	opRead             // open with token, read fully, close
)

// TestUpdateAtomicityProperty drives random schedules of commits, aborts,
// crashes and reads and checks the paper's core invariants after every step:
//
//  1. the file content always equals the last *committed* version;
//  2. reads never observe a torn mixture of versions;
//  3. the newest archived version always matches the last committed content;
//  4. the database's companion size column always matches the file.
func TestUpdateAtomicityProperty(t *testing.T) {
	prop := func(schedule []byte) bool {
		if len(schedule) > 12 {
			schedule = schedule[:12]
		}
		sys, err := NewSystem(Config{
			Servers:     []ServerConfig{{Name: "fs1", OpenWait: 200 * time.Millisecond}},
			LockTimeout: time.Second,
		})
		if err != nil {
			return false
		}
		defer sys.Close()
		srv, _ := sys.Server("fs1")
		if err := srv.Phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777); err != nil {
			return false
		}
		committed := workload.UniformContent(512, 0)
		if err := srv.Phys.WriteFile("/d/f.bin", committed); err != nil {
			return false
		}
		ino, _ := srv.Phys.Lookup("/d/f.bin")
		srv.Phys.Chown(ino, fs.Cred{UID: fs.Root}, alice)
		srv.Phys.Chmod(ino, fs.Cred{UID: alice}, 0o644)
		sys.DB.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES, doc_size INT)`)
		if _, err := sys.DB.Exec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.bin'), NULL)`); err != nil {
			return false
		}
		sess := sys.NewSession(alice)
		version := 0
		lastCommittedSize := int64(-1) // NULL until the first commit

		check := func() bool {
			cur, _ := sys.Server("fs1")
			data, err := cur.Phys.ReadFile("/d/f.bin")
			if err != nil || !bytes.Equal(data, committed) {
				return false
			}
			cur.DLFM.WaitArchives()
			vs := cur.Archive.Versions("fs1", "/d/f.bin")
			if len(vs) == 0 || !bytes.Equal(vs[len(vs)-1].Content(), committed) {
				return false
			}
			row, err := sys.DB.QueryRow(`SELECT doc_size FROM t WHERE id = 1`)
			if err != nil {
				return false
			}
			if lastCommittedSize < 0 {
				return row[0].IsNull()
			}
			return row[0].I == lastCommittedSize
		}

		for i, step := range schedule {
			switch op(step % 4) {
			case opCommit:
				row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`)
				if err != nil {
					return false
				}
				f, err := sess.OpenWrite(row[0].S)
				if err != nil {
					return false
				}
				version++
				next := workload.UniformContent(512+16*version, version)
				if err := f.WriteAll(next); err != nil {
					return false
				}
				if err := f.Close(); err != nil {
					return false
				}
				committed = next
				lastCommittedSize = int64(len(next))
			case opAbort:
				row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`)
				if err != nil {
					return false
				}
				f, err := sess.OpenWrite(row[0].S)
				if err != nil {
					return false
				}
				f.WriteAll([]byte(fmt.Sprintf("garbage %d", i)))
				if err := f.Abort(); err != nil {
					return false
				}
			case opCrash:
				row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`)
				if err != nil {
					return false
				}
				f, err := sess.OpenWrite(row[0].S)
				if err != nil {
					return false
				}
				f.WriteAll([]byte(fmt.Sprintf("in-flight %d", i)))
				if _, err := sys.CrashAndRecoverServer("fs1"); err != nil {
					return false
				}
				sess = sys.NewSession(alice) // sessions outlive the server handle
			case opRead:
				row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETE(doc) FROM t WHERE id = 1`)
				if err != nil {
					return false
				}
				cur, _ := sys.Server("fs1")
				cur.DLFM.WaitArchives() // a fresh reader may race the archiver's flag
				f, err := sess.OpenRead(row[0].S)
				if err != nil {
					return false
				}
				data, err := f.ReadAll()
				f.Close()
				if err != nil || !bytes.Equal(data, committed) {
					return false
				}
			}
			if !check() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
