package core

import (
	"testing"
	"time"

	"datalinks/internal/fs"
	"datalinks/internal/sqlmini"
)

// newTwoServerSys models the paper's "multiple distinct file servers within
// a DataLinks database" deployment (§1).
func newTwoServerSys(t *testing.T) (*System, *FileServer, *FileServer) {
	t.Helper()
	sys, err := NewSystem(Config{
		Servers: []ServerConfig{
			{Name: "east", OpenWait: 500 * time.Millisecond},
			{Name: "west", OpenWait: 500 * time.Millisecond},
		},
		LockTimeout: time.Second,
	})
	if err != nil {
		t.Fatalf("new system: %v", err)
	}
	t.Cleanup(sys.Close)
	east, _ := sys.Server("east")
	west, _ := sys.Server("west")
	for _, srv := range []*FileServer{east, west} {
		if err := srv.Phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777); err != nil {
			t.Fatal(err)
		}
		if err := srv.Phys.WriteFile("/d/f.bin", []byte(srv.Name+" v0")); err != nil {
			t.Fatal(err)
		}
		ino, _ := srv.Phys.Lookup("/d/f.bin")
		srv.Phys.Chown(ino, fs.Cred{UID: fs.Root}, alice)
		srv.Phys.Chmod(ino, fs.Cred{UID: alice}, 0o644)
	}
	return sys, east, west
}

func TestMultiServerLinkTransactionSpansServers(t *testing.T) {
	sys, east, west := newTwoServerSys(t)
	sys.DB.MustExec(`CREATE TABLE mirror (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES)`)
	// One transaction links a file on each server.
	txn := sys.DB.Begin()
	if _, err := txn.Exec(`INSERT INTO mirror VALUES (1, DLVALUE('dlfs://east/d/f.bin'))`); err != nil {
		t.Fatalf("east link: %v", err)
	}
	if _, err := txn.Exec(`INSERT INTO mirror VALUES (2, DLVALUE('dlfs://west/d/f.bin'))`); err != nil {
		t.Fatalf("west link: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if !east.DLFM.IsLinked("/d/f.bin") || !west.DLFM.IsLinked("/d/f.bin") {
		t.Fatal("links missing on one server")
	}

	// And an aborted transaction touching both undoes both.
	txn = sys.DB.Begin()
	if _, err := txn.Exec(`DELETE FROM mirror`); err != nil {
		t.Fatalf("delete: %v", err)
	}
	txn.Abort()
	if !east.DLFM.IsLinked("/d/f.bin") || !west.DLFM.IsLinked("/d/f.bin") {
		t.Fatal("abort lost a link")
	}
}

func TestMultiServerUserTxnAcrossServers(t *testing.T) {
	sys, east, west := newTwoServerSys(t)
	sys.DB.MustExec(`CREATE TABLE mirror (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES)`)
	sys.DB.MustExec(`INSERT INTO mirror VALUES (1, DLVALUE('dlfs://east/d/f.bin')), (2, DLVALUE('dlfs://west/d/f.bin'))`)

	sess := sys.NewSession(alice)
	u := sess.BeginUserTxn()
	r1, _ := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM mirror WHERE id = 1`)
	r2, _ := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM mirror WHERE id = 2`)
	f1, err := u.OpenWrite(r1[0].S)
	if err != nil {
		t.Fatalf("east open: %v", err)
	}
	f2, err := u.OpenWrite(r2[0].S)
	if err != nil {
		t.Fatalf("west open: %v", err)
	}
	f1.WriteAll([]byte("east v1"))
	f2.WriteAll([]byte("west v1"))
	if err := u.Commit(); err != nil {
		t.Fatalf("user txn commit: %v", err)
	}
	de, _ := east.Phys.ReadFile("/d/f.bin")
	dw, _ := west.Phys.ReadFile("/d/f.bin")
	if string(de) != "east v1" || string(dw) != "west v1" {
		t.Fatalf("contents = %q / %q", de, dw)
	}
}

func TestMultiServerCrashIsolatedToOneServer(t *testing.T) {
	sys, east, west := newTwoServerSys(t)
	_ = east
	sys.DB.MustExec(`CREATE TABLE mirror (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES)`)
	sys.DB.MustExec(`INSERT INTO mirror VALUES (1, DLVALUE('dlfs://east/d/f.bin')), (2, DLVALUE('dlfs://west/d/f.bin'))`)
	sess := sys.NewSession(alice)

	// In-flight update on east; committed update on west.
	r1, _ := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM mirror WHERE id = 1`)
	fe, err := sess.OpenWrite(r1[0].S)
	if err != nil {
		t.Fatalf("east open: %v", err)
	}
	fe.WriteAll([]byte("east garbage"))
	r2, _ := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM mirror WHERE id = 2`)
	fw, err := sess.OpenWrite(r2[0].S)
	if err != nil {
		t.Fatalf("west open: %v", err)
	}
	fw.WriteAll([]byte("west v1"))
	if err := fw.Close(); err != nil {
		t.Fatalf("west commit: %v", err)
	}
	west.DLFM.WaitArchives()

	// Crash east only.
	if _, err := sys.CrashAndRecoverServer("east"); err != nil {
		t.Fatalf("east recovery: %v", err)
	}
	eastNew, _ := sys.Server("east")
	de, _ := eastNew.Phys.ReadFile("/d/f.bin")
	if string(de) != "east v0" {
		t.Fatalf("east after recovery = %q", de)
	}
	dw, _ := west.Phys.ReadFile("/d/f.bin")
	if string(dw) != "west v1" {
		t.Fatalf("west disturbed by east crash: %q", dw)
	}
}

func TestMultiServerRestoreCoversAllServers(t *testing.T) {
	sys, east, west := newTwoServerSys(t)
	sys.DB.MustExec(`CREATE TABLE mirror (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES)`)
	sys.DB.MustExec(`INSERT INTO mirror VALUES (1, DLVALUE('dlfs://east/d/f.bin')), (2, DLVALUE('dlfs://west/d/f.bin'))`)
	s0 := sys.Engine.StateID()
	sess := sys.NewSession(alice)
	for _, id := range []int{1, 2} {
		row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM mirror WHERE id = ?`, intVal(id))
		if err != nil {
			t.Fatalf("url %d: %v", id, err)
		}
		f, err := sess.OpenWrite(row[0].S)
		if err != nil {
			t.Fatalf("open %d: %v", id, err)
		}
		f.WriteAll([]byte("updated"))
		if err := f.Close(); err != nil {
			t.Fatalf("close %d: %v", id, err)
		}
	}
	east.DLFM.WaitArchives()
	west.DLFM.WaitArchives()

	if err := sys.Engine.RestoreToState(s0); err != nil {
		t.Fatalf("restore: %v", err)
	}
	de, _ := east.Phys.ReadFile("/d/f.bin")
	dw, _ := west.Phys.ReadFile("/d/f.bin")
	if string(de) != "east v0" || string(dw) != "west v0" {
		t.Fatalf("restored contents = %q / %q", de, dw)
	}
}

func intVal(i int) sqlmini.Value { return sqlmini.Int(int64(i)) }
