package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"datalinks/internal/fs"
	"datalinks/internal/sqlmini"
)

const alice fs.UID = 100
const bob fs.UID = 101

// newSys builds a one-server system with a movies table and one linked clip.
func newSys(t *testing.T, mode string) (*System, *FileServer) {
	t.Helper()
	sys, err := NewSystem(Config{
		Servers:     []ServerConfig{{Name: "fs1", OpenWait: 300 * time.Millisecond}},
		LockTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("new system: %v", err)
	}
	srv, _ := sys.Server("fs1")
	if err := srv.Phys.MkdirAll("/movies", fs.Cred{UID: fs.Root}, 0o777); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := srv.Phys.WriteFile("/movies/clip1.mpg", []byte("v0 content")); err != nil {
		t.Fatalf("seed file: %v", err)
	}
	// Give the file a real owner before linking.
	ino, _ := srv.Phys.Lookup("/movies/clip1.mpg")
	srv.Phys.Chown(ino, fs.Cred{UID: fs.Root}, alice)
	srv.Phys.Chmod(ino, fs.Cred{UID: alice}, 0o644)

	sys.DB.MustExec(`CREATE TABLE movies (
		id INT PRIMARY KEY,
		title VARCHAR,
		clip DATALINK MODE ` + strings.ToUpper(mode) + ` RECOVERY YES,
		clip_size INT,
		clip_mtime TIMESTAMP
	)`)
	if _, err := sys.DB.Exec(`INSERT INTO movies (id, title, clip) VALUES (1, 'Casablanca', DLVALUE('dlfs://fs1/movies/clip1.mpg'))`); err != nil {
		t.Fatalf("link insert: %v", err)
	}
	return sys, srv
}

// urlFor fetches the tokenized URL for the movie's clip.
func urlFor(t *testing.T, sys *System, fn string) string {
	t.Helper()
	row, err := sys.DB.QueryRow(`SELECT ` + fn + `(clip) FROM movies WHERE id = 1`)
	if err != nil {
		t.Fatalf("select %s: %v", fn, err)
	}
	return row[0].S
}

func TestLinkMakesFileReadOnly(t *testing.T) {
	_, srv := newSys(t, "rfd")
	ino, _ := srv.Phys.Lookup("/movies/clip1.mpg")
	attr, _ := srv.Phys.Getattr(ino)
	if attr.Mode&0o222 != 0 {
		t.Fatalf("linked rfd file still writable: mode %o", attr.Mode)
	}
	if attr.UID != alice {
		t.Fatalf("rfd link must not change ownership: uid %d", attr.UID)
	}
}

func TestLinkFullControlTakesOver(t *testing.T) {
	_, srv := newSys(t, "rdd")
	ino, _ := srv.Phys.Lookup("/movies/clip1.mpg")
	attr, _ := srv.Phys.Getattr(ino)
	if attr.UID != srv.DLFM.UID() {
		t.Fatalf("rdd link must take over ownership: uid %d", attr.UID)
	}
	if attr.Mode != 0o400 {
		t.Fatalf("rdd at-rest mode = %o, want 400", attr.Mode)
	}
}

func TestLinkRollbackRestoresPermissions(t *testing.T) {
	sys, srv := newSys(t, "rdd")
	srv.Phys.WriteFile("/movies/clip2.mpg", []byte("x"))
	txn := sys.DB.Begin()
	if _, err := txn.Exec(`INSERT INTO movies (id, title, clip) VALUES (2, 'Vertigo', DLVALUE('dlfs://fs1/movies/clip2.mpg'))`); err != nil {
		t.Fatalf("insert: %v", err)
	}
	// Mid-transaction the takeover is already applied (eager).
	ino, _ := srv.Phys.Lookup("/movies/clip2.mpg")
	attr, _ := srv.Phys.Getattr(ino)
	if attr.UID != srv.DLFM.UID() {
		t.Fatalf("takeover not eager: uid %d", attr.UID)
	}
	if err := txn.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	attr, _ = srv.Phys.Getattr(ino)
	if attr.UID == srv.DLFM.UID() {
		t.Fatal("abort did not undo the takeover")
	}
	if srv.DLFM.IsLinked("/movies/clip2.mpg") {
		t.Fatal("aborted link still in repository")
	}
}

func TestReadWithTokenRDD(t *testing.T) {
	sys, _ := newSys(t, "rdd")
	url := urlFor(t, sys, "DLURLCOMPLETE")
	if !strings.Contains(url, ";dltoken=") {
		t.Fatalf("rdd read URL missing token: %s", url)
	}
	sess := sys.NewSession(bob)
	f, err := sess.OpenRead(url)
	if err != nil {
		t.Fatalf("open with token: %v", err)
	}
	data, err := f.ReadAll()
	if err != nil || string(data) != "v0 content" {
		t.Fatalf("read = %q, %v", data, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestReadWithoutTokenRDDFails(t *testing.T) {
	sys, _ := newSys(t, "rdd")
	sess := sys.NewSession(bob)
	if _, err := sess.OpenRead("dlfs://fs1/movies/clip1.mpg"); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("tokenless rdd read = %v, want permission denied", err)
	}
}

func TestReadTokenCannotWrite(t *testing.T) {
	sys, _ := newSys(t, "rdd")
	url := urlFor(t, sys, "DLURLCOMPLETE")
	sess := sys.NewSession(bob)
	if _, err := sess.OpenWrite(url); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("write with read token = %v, want permission denied", err)
	}
}

func TestRFDReadNeedsNoTokenAndNoUpcall(t *testing.T) {
	sys, srv := newSys(t, "rfd")
	url := urlFor(t, sys, "DLURLCOMPLETE")
	if strings.Contains(url, ";dltoken=") {
		t.Fatalf("rfd read URL should carry no token: %s", url)
	}
	srv.Transport.Reset()
	sess := sys.NewSession(bob)
	f, err := sess.OpenRead(url)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	data, _ := f.ReadAll()
	if string(data) != "v0 content" {
		t.Fatalf("read = %q", data)
	}
	f.Close()
	if n := srv.Transport.Calls(); n != 0 {
		t.Fatalf("rfd read path made %d upcalls, want 0", n)
	}
}

func TestUpdateInPlaceCommit(t *testing.T) {
	sys, srv := newSys(t, "rfd")
	wurl := urlFor(t, sys, "DLURLCOMPLETEWRITE")
	if !strings.Contains(wurl, ";dltoken=") {
		t.Fatalf("write URL missing token: %s", wurl)
	}
	sess := sys.NewSession(alice)
	f, err := sess.OpenWrite(wurl)
	if err != nil {
		t.Fatalf("open write: %v", err)
	}
	if err := f.WriteAll([]byte("v1 content!")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close (commit): %v", err)
	}
	srv.DLFM.WaitArchives()

	// Content committed.
	data, _ := srv.Phys.ReadFile("/movies/clip1.mpg")
	if string(data) != "v1 content!" {
		t.Fatalf("content = %q", data)
	}
	// Metadata auto-updated in the same transaction (§4.3).
	row, err := sys.DB.QueryRow(`SELECT clip_size FROM movies WHERE id = 1`)
	if err != nil {
		t.Fatalf("select size: %v", err)
	}
	if row[0].I != int64(len("v1 content!")) {
		t.Fatalf("clip_size = %d, want %d", row[0].I, len("v1 content!"))
	}
	// A version was archived with the commit state id.
	versions := srv.Archive.Versions("fs1", "/movies/clip1.mpg")
	if len(versions) != 2 || versions[1].Version != 1 {
		t.Fatalf("versions = %+v", versions)
	}
	// File is read-only again at rest.
	ino, _ := srv.Phys.Lookup("/movies/clip1.mpg")
	attr, _ := srv.Phys.Getattr(ino)
	if attr.Mode&0o222 != 0 || attr.UID != alice {
		t.Fatalf("at-rest state after commit: uid=%d mode=%o", attr.UID, attr.Mode)
	}
}

func TestUpdateAbortRestoresLastCommitted(t *testing.T) {
	sys, srv := newSys(t, "rfd")
	wurl := urlFor(t, sys, "DLURLCOMPLETEWRITE")
	sess := sys.NewSession(alice)
	f, err := sess.OpenWrite(wurl)
	if err != nil {
		t.Fatalf("open write: %v", err)
	}
	f.WriteAll([]byte("scribbled garbage"))
	if err := f.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	data, _ := srv.Phys.ReadFile("/movies/clip1.mpg")
	if string(data) != "v0 content" {
		t.Fatalf("content after abort = %q, want v0", data)
	}
	// In-flight content is quarantined.
	names, err := srv.Phys.ReadDir("/lost+found")
	if err != nil || len(names) != 1 {
		t.Fatalf("quarantine = %v, %v", names, err)
	}
	// The file is usable again: a new update succeeds.
	wurl2 := urlFor(t, sys, "DLURLCOMPLETEWRITE")
	f2, err := sess.OpenWrite(wurl2)
	if err != nil {
		t.Fatalf("open after abort: %v", err)
	}
	f2.WriteAll([]byte("v1"))
	if err := f2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	srv.DLFM.WaitArchives()
}

func TestWriteWriteSerialization(t *testing.T) {
	sys, _ := newSys(t, "rfd")
	sess := sys.NewSession(alice)
	w1 := urlFor(t, sys, "DLURLCOMPLETEWRITE")
	f1, err := sess.OpenWrite(w1)
	if err != nil {
		t.Fatalf("open 1: %v", err)
	}
	// Second writer times out at DLFM (OpenWait 300ms) -> busy.
	w2 := urlFor(t, sys, "DLURLCOMPLETEWRITE")
	if _, err := sess.OpenWrite(w2); !errors.Is(err, fs.ErrLocked) {
		t.Fatalf("second writer = %v, want busy/locked", err)
	}
	f1.WriteAll([]byte("v1"))
	if err := f1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestRFDReadRejectedDuringTakeover(t *testing.T) {
	sys, _ := newSys(t, "rfd")
	sess := sys.NewSession(alice)
	wurl := urlFor(t, sys, "DLURLCOMPLETEWRITE")
	f, err := sess.OpenWrite(wurl)
	if err != nil {
		t.Fatalf("open write: %v", err)
	}
	// A reader during the update window is rejected by the permission check
	// (the paper's read-write serialization without read locks).
	reader := sys.NewSession(bob)
	if _, err := reader.OpenRead("dlfs://fs1/movies/clip1.mpg"); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("read during takeover = %v, want permission denied", err)
	}
	f.Close()
	// After the update commits, reads work again.
	if _, err := reader.OpenRead("dlfs://fs1/movies/clip1.mpg"); err != nil {
		t.Fatalf("read after close: %v", err)
	}
}

func TestRDDReadWriteSerialization(t *testing.T) {
	sys, _ := newSys(t, "rdd")
	sessA := sys.NewSession(alice)
	// A reader holds the file open.
	rurl := urlFor(t, sys, "DLURLCOMPLETE")
	rf, err := sessA.OpenRead(rurl)
	if err != nil {
		t.Fatalf("open read: %v", err)
	}
	// Writer must wait and time out while the reader is open (rdd full
	// serialization at open time).
	wurl := urlFor(t, sys, "DLURLCOMPLETEWRITE")
	if _, err := sessA.OpenWrite(wurl); !errors.Is(err, fs.ErrLocked) {
		t.Fatalf("write during read = %v, want busy", err)
	}
	rf.Close()
	wf, err := sessA.OpenWrite(urlFor(t, sys, "DLURLCOMPLETEWRITE"))
	if err != nil {
		t.Fatalf("write after reader closed: %v", err)
	}
	wf.WriteAll([]byte("v1"))
	if err := wf.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestUnlinkRejectedWhileOpen(t *testing.T) {
	sys, _ := newSys(t, "rdd")
	sess := sys.NewSession(alice)
	rf, err := sess.OpenRead(urlFor(t, sys, "DLURLCOMPLETE"))
	if err != nil {
		t.Fatalf("open read: %v", err)
	}
	if _, err := sys.DB.Exec(`DELETE FROM movies WHERE id = 1`); err == nil {
		t.Fatal("unlink succeeded while the file was open for read")
	}
	rf.Close()
	if _, err := sys.DB.Exec(`DELETE FROM movies WHERE id = 1`); err != nil {
		t.Fatalf("unlink after close: %v", err)
	}
	// After unlink the file is unprotected again.
	srv, _ := sys.Server("fs1")
	if srv.DLFM.IsLinked("/movies/clip1.mpg") {
		t.Fatal("file still linked after delete")
	}
	ino, _ := srv.Phys.Lookup("/movies/clip1.mpg")
	attr, _ := srv.Phys.Getattr(ino)
	if attr.UID != alice || attr.Mode != 0o644 {
		t.Fatalf("permissions not restored after unlink: uid=%d mode=%o", attr.UID, attr.Mode)
	}
}

func TestRemoveRenameRejectedForLinkedFiles(t *testing.T) {
	sys, srv := newSys(t, "rff")
	sess := sys.NewSession(alice)
	_ = sess
	// rff: reads and writes stay with the FS, but remove/rename of the
	// linked file is rejected — no dangling pointers.
	if err := srv.LFS.Remove(fs.Cred{UID: alice}, "/movies/clip1.mpg"); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("remove linked = %v, want rejection", err)
	}
	if err := srv.LFS.Rename(fs.Cred{UID: alice}, "/movies/clip1.mpg", "/movies/other.mpg"); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("rename linked = %v, want rejection", err)
	}
	// Unlinked files pass through.
	srv.Phys.WriteFile("/movies/free.dat", []byte("x"))
	if err := srv.LFS.Remove(fs.Cred{UID: fs.Root}, "/movies/free.dat"); err != nil {
		t.Fatalf("remove unlinked: %v", err)
	}
	// Renaming onto a linked file is rejected too.
	srv.Phys.WriteFile("/movies/new.dat", []byte("y"))
	if err := srv.LFS.Rename(fs.Cred{UID: fs.Root}, "/movies/new.dat", "/movies/clip1.mpg"); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("rename onto linked = %v, want rejection", err)
	}
}

func TestRFBWritesBlocked(t *testing.T) {
	sys, _ := newSys(t, "rfb")
	sess := sys.NewSession(alice)
	// Even the owner cannot write an rfb file, and there are no write tokens.
	if _, err := sess.OpenWrite("dlfs://fs1/movies/clip1.mpg"); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("rfb write = %v, want permission denied", err)
	}
	if _, err := sys.DB.Query(`SELECT DLURLCOMPLETEWRITE(clip) FROM movies WHERE id = 1`); err == nil {
		t.Fatal("write token issued for rfb-linked file")
	}
	// Reads are free (FS-controlled).
	f, err := sess.OpenRead("dlfs://fs1/movies/clip1.mpg")
	if err != nil {
		t.Fatalf("rfb read: %v", err)
	}
	f.Close()
}

func TestExpiredTokenRejected(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	clock := &now
	sys, err := NewSystem(Config{
		Servers:  []ServerConfig{{Name: "fs1"}},
		Clock:    func() time.Time { return *clock },
		TokenTTL: time.Minute,
	})
	if err != nil {
		t.Fatalf("new system: %v", err)
	}
	srv, _ := sys.Server("fs1")
	srv.Phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777)
	srv.Phys.WriteFile("/d/f", []byte("x"))
	sys.DB.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES)`)
	sys.DB.MustExec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f'))`)
	row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETE(doc) FROM t WHERE id = 1`)
	if err != nil {
		t.Fatalf("token: %v", err)
	}
	url := row[0].S
	// Let the token expire.
	*clock = now.Add(2 * time.Minute)
	sess := sys.NewSession(alice)
	if _, err := sess.OpenRead(url); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("expired token = %v, want rejection", err)
	}
}

func TestCrashRecoveryRestoresInFlightUpdate(t *testing.T) {
	sys, srv := newSys(t, "rfd")
	_ = srv
	sess := sys.NewSession(alice)
	f, err := sess.OpenWrite(urlFor(t, sys, "DLURLCOMPLETEWRITE"))
	if err != nil {
		t.Fatalf("open write: %v", err)
	}
	f.WriteAll([]byte("half-written update that never committed"))
	// Crash the file server with the update in flight.
	rep, err := sys.CrashAndRecoverServer("fs1")
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(rep.RestoredFiles) != 1 || rep.RestoredFiles[0] != "/movies/clip1.mpg" {
		t.Fatalf("restored = %v", rep.RestoredFiles)
	}
	newSrv, _ := sys.Server("fs1")
	data, _ := newSrv.Phys.ReadFile("/movies/clip1.mpg")
	if string(data) != "v0 content" {
		t.Fatalf("content after crash recovery = %q, want v0", data)
	}
	// The in-flight version is quarantined, the file usable again.
	names, _ := newSrv.Phys.ReadDir("/lost+found")
	if len(names) != 1 {
		t.Fatalf("quarantine after recovery = %v", names)
	}
	sess2 := sys.NewSession(alice)
	f2, err := sess2.OpenWrite(urlFor(t, sys, "DLURLCOMPLETEWRITE"))
	if err != nil {
		t.Fatalf("open after recovery: %v", err)
	}
	f2.WriteAll([]byte("v1 after recovery"))
	if err := f2.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
	newSrv.DLFM.WaitArchives()
	data, _ = newSrv.Phys.ReadFile("/movies/clip1.mpg")
	if string(data) != "v1 after recovery" {
		t.Fatalf("content = %q", data)
	}
}

func TestCrashRecoveryKeepsCommittedUpdate(t *testing.T) {
	sys, srv := newSys(t, "rfd")
	sess := sys.NewSession(alice)
	f, _ := sess.OpenWrite(urlFor(t, sys, "DLURLCOMPLETEWRITE"))
	f.WriteAll([]byte("v1 committed"))
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	srv.DLFM.WaitArchives()
	if _, err := sys.CrashAndRecoverServer("fs1"); err != nil {
		t.Fatalf("recover: %v", err)
	}
	newSrv, _ := sys.Server("fs1")
	data, _ := newSrv.Phys.ReadFile("/movies/clip1.mpg")
	if string(data) != "v1 committed" {
		t.Fatalf("committed content lost in recovery: %q", data)
	}
}

func TestPointInTimeRestore(t *testing.T) {
	sys, srv := newSys(t, "rdd")
	sess := sys.NewSession(alice)
	var states []uint64
	var contents = []string{"v0 content"}
	states = append(states, sys.Engine.StateID())
	for i := 1; i <= 3; i++ {
		f, err := sess.OpenWrite(urlFor(t, sys, "DLURLCOMPLETEWRITE"))
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		content := strings.Repeat("x", i) + " version"
		f.WriteAll([]byte(content))
		if err := f.Close(); err != nil {
			t.Fatalf("close %d: %v", i, err)
		}
		srv.DLFM.WaitArchives()
		states = append(states, sys.Engine.StateID())
		contents = append(contents, content)
	}
	// Restore to each captured state and verify both halves agree.
	for i := len(states) - 1; i >= 1; i-- {
		if err := sys.Engine.RestoreToState(states[i]); err != nil {
			t.Fatalf("restore to state %d: %v", states[i], err)
		}
		data, _ := srv.Phys.ReadFile("/movies/clip1.mpg")
		if string(data) != contents[i] {
			t.Fatalf("restore %d: content = %q, want %q", i, data, contents[i])
		}
		// The database half still references the clip.
		row, err := sys.Engine.DB().QueryRow(`SELECT COUNT(*) FROM movies`)
		if err != nil || row[0].I != 1 {
			t.Fatalf("restored db rows = %v, %v", row, err)
		}
	}
}

func TestUserTxnMultiFile(t *testing.T) {
	sys, srv := newSys(t, "rfd")
	srv.Phys.WriteFile("/movies/clip2.mpg", []byte("c2 v0"))
	sys.DB.MustExec(`INSERT INTO movies (id, title, clip) VALUES (2, 'Metropolis', DLVALUE('dlfs://fs1/movies/clip2.mpg'))`)

	sess := sys.NewSession(alice)
	u := sess.BeginUserTxn()
	r1, _ := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(clip) FROM movies WHERE id = 1`)
	r2, _ := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(clip) FROM movies WHERE id = 2`)
	f1, err := u.OpenWrite(r1[0].S)
	if err != nil {
		t.Fatalf("open 1: %v", err)
	}
	f2, err := u.OpenWrite(r2[0].S)
	if err != nil {
		t.Fatalf("open 2: %v", err)
	}
	f1.WriteAll([]byte("c1 v1"))
	f2.WriteAll([]byte("c2 v1"))
	if err := u.Commit(); err != nil {
		t.Fatalf("user txn commit: %v", err)
	}
	d1, _ := srv.Phys.ReadFile("/movies/clip1.mpg")
	d2, _ := srv.Phys.ReadFile("/movies/clip2.mpg")
	if string(d1) != "c1 v1" || string(d2) != "c2 v1" {
		t.Fatalf("contents = %q, %q", d1, d2)
	}
}

func TestUserTxnAbort(t *testing.T) {
	sys, srv := newSys(t, "rfd")
	sess := sys.NewSession(alice)
	u := sess.BeginUserTxn()
	f, err := u.OpenWrite(urlFor(t, sys, "DLURLCOMPLETEWRITE"))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f.WriteAll([]byte("garbage"))
	if err := u.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	data, _ := srv.Phys.ReadFile("/movies/clip1.mpg")
	if string(data) != "v0 content" {
		t.Fatalf("content after user txn abort = %q", data)
	}
}

func TestUnmodifiedCloseCreatesNoVersion(t *testing.T) {
	sys, srv := newSys(t, "rfd")
	sess := sys.NewSession(alice)
	f, err := sess.OpenWrite(urlFor(t, sys, "DLURLCOMPLETEWRITE"))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// No write happens.
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	srv.DLFM.WaitArchives()
	versions := srv.Archive.Versions("fs1", "/movies/clip1.mpg")
	if len(versions) != 1 {
		t.Fatalf("unmodified close created a version: %+v", versions)
	}
}

func TestStrictModeClosesLinkWindow(t *testing.T) {
	sys, err := NewSystem(Config{
		Servers: []ServerConfig{{Name: "fs1", Strict: true, OpenWait: 200 * time.Millisecond}},
	})
	if err != nil {
		t.Fatalf("new system: %v", err)
	}
	srv, _ := sys.Server("fs1")
	srv.Phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777)
	srv.Phys.WriteFile("/d/f", []byte("x"))
	sys.DB.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RDD)`)

	// Open the (unlinked) file, then try to link it: strict mode rejects.
	fd, err := srv.LFS.Open(fs.Cred{UID: alice}, "/d/f", fs.AccessRead)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := sys.DB.Exec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f'))`); err == nil {
		t.Fatal("strict mode allowed linking an open file")
	}
	srv.LFS.Close(fd)
	if _, err := sys.DB.Exec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f'))`); err != nil {
		t.Fatalf("link after close: %v", err)
	}
}

func TestLinkWindowExistsWithoutStrict(t *testing.T) {
	sys, srv := newSys(t, "rdd")
	// Default (non-strict) system: linking an open file succeeds — the §4.5
	// window of inconsistency the paper leaves open.
	srv.Phys.WriteFile("/movies/open.dat", []byte("x"))
	fd, err := srv.LFS.Open(fs.Cred{UID: alice}, "/movies/open.dat", fs.AccessRead)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := sys.DB.Exec(`INSERT INTO movies (id, title, clip) VALUES (9, 'w', DLVALUE('dlfs://fs1/movies/open.dat'))`); err != nil {
		t.Fatalf("link while open (window) should succeed: %v", err)
	}
	srv.LFS.Close(fd)
}

func TestMetadataCompanionColumnsOptional(t *testing.T) {
	// A table without clip_size/clip_mtime columns still commits updates.
	sys, err := NewSystem(Config{Servers: []ServerConfig{{Name: "fs1"}}})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	srv, _ := sys.Server("fs1")
	srv.Phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777)
	srv.Phys.WriteFile("/d/f", []byte("x"))
	sys.DB.MustExec(`CREATE TABLE bare (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES)`)
	sys.DB.MustExec(`INSERT INTO bare VALUES (1, DLVALUE('dlfs://fs1/d/f'))`)
	row, _ := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM bare WHERE id = 1`)
	sess := sys.NewSession(alice)
	f, err := sess.OpenWrite(row[0].S)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f.WriteAll([]byte("xy"))
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestTokenIsPerUserID(t *testing.T) {
	sys, _ := newSys(t, "rdd")
	url := urlFor(t, sys, "DLURLCOMPLETE")
	// Alice validates the token (lookup), creating a token entry under her
	// uid. Bob never presented a token: opening without one fails for him
	// even after alice's entry exists.
	aliceSess := sys.NewSession(alice)
	f, err := aliceSess.OpenRead(url)
	if err != nil {
		t.Fatalf("alice open: %v", err)
	}
	f.Close()
	bobSess := sys.NewSession(bob)
	if _, err := bobSess.OpenRead("dlfs://fs1/movies/clip1.mpg"); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("bob tokenless open = %v, want rejection", err)
	}
	// But processes sharing alice's uid are covered by her entry (§4.1).
	aliceTwin := sys.NewSession(alice)
	f2, err := aliceTwin.OpenRead("dlfs://fs1/movies/clip1.mpg")
	if err != nil {
		t.Fatalf("same-uid open via token entry: %v", err)
	}
	f2.Close()
}

func TestHostCrashRecoveryOutcomeResolution(t *testing.T) {
	// A committed update must survive a crash and restart of both machines.
	sys, srv := newSys(t, "rfd")
	_ = srv
	sess := sys.NewSession(alice)
	f, _ := sess.OpenWrite(urlFor(t, sys, "DLURLCOMPLETEWRITE"))
	f.WriteAll([]byte("v1 committed"))
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	srv.DLFM.WaitArchives()

	// Crash both: the host database and the file server.
	if err := sys.RecoverHost(); err != nil {
		t.Fatalf("host recovery: %v", err)
	}
	if _, err := sys.CrashAndRecoverServer("fs1"); err != nil {
		t.Fatalf("server recovery: %v", err)
	}
	newSrv, _ := sys.Server("fs1")
	data, _ := newSrv.Phys.ReadFile("/movies/clip1.mpg")
	if string(data) != "v1 committed" {
		t.Fatalf("content after double recovery = %q", data)
	}
	// The committed metadata survived host recovery.
	row, err := sys.DB.QueryRow(`SELECT clip_size FROM movies WHERE id = 1`)
	if err != nil || row[0].I != int64(len("v1 committed")) {
		t.Fatalf("metadata after recovery = %v, %v", row, err)
	}
}

func TestSQLVisibleState(t *testing.T) {
	sys, _ := newSys(t, "rdd")
	rows, err := sys.DB.Query(`SELECT DLURLPATHONLY(clip), DLURLSERVER(clip) FROM movies WHERE id = 1`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if rows.Data[0][0].S != "/movies/clip1.mpg" || rows.Data[0][1].S != "fs1" {
		t.Fatalf("scalar fns = %+v", rows.Data[0])
	}
	var _ sqlmini.Row // keep import
}
