package chunkdisk

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"datalinks/internal/extent"
	"datalinks/internal/fsyncer"
)

// packFilesOnDisk lists pack-*.pk files in a directory.
func packFilesOnDisk(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if _, ok := parsePackName(e.Name()); ok {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestPackRoundTripAndRotation: small blobs land in packfiles (no loose
// files), packs seal and rotate at the target size, and every blob pages
// back in byte-identical.
func TestPackRoundTripAndRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, MemoryBudget: 16, PackTargetBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 40
	var hashes []extent.Hash
	for i := 0; i < n; i++ {
		data, h := blob(i, 1000+i)
		hashes = append(hashes, h)
		if !put(t, s, data, h) {
			t.Fatalf("blob %d not written", i)
		}
	}
	st := s.Stats()
	if st.PackAppends != n {
		t.Fatalf("packAppends = %d, want %d", st.PackAppends, n)
	}
	if st.PackFiles < 2 {
		t.Fatalf("packFiles = %d; a 16 KiB target over ~%d KiB of blobs must rotate", st.PackFiles, n)
	}
	if got := diskFiles(t, dir); got != 0 {
		t.Fatalf("%d loose files for blobs under the pack threshold", got)
	}
	if st.FilesCreated != st.PackFiles {
		t.Fatalf("filesCreated = %d, want one per pack (%d)", st.FilesCreated, st.PackFiles)
	}
	for i, h := range hashes {
		data, _ := blob(i, 1000+i)
		if got := get(t, s, h); !bytes.Equal(got, data) {
			t.Fatalf("pack blob %d diverged after page-in", i)
		}
	}
	// Blobs above the threshold stay loose.
	big, bh := blob(999, int(DefaultPackThreshold)+1)
	put(t, s, big, bh)
	if got := diskFiles(t, dir); got != 1 {
		t.Fatalf("%d loose files after an above-threshold put, want 1", got)
	}
	if got := get(t, s, bh); !bytes.Equal(got, big) {
		t.Fatal("loose blob diverged")
	}
}

// TestPackAdoptionAndClaim: a reopened store indexes pack records from the
// files alone (no separate index), Claim revives them with zero transfer,
// and unclaimed records sweep into dead space.
func TestPackAdoptionAndClaim(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Config{Dir: dir, MemoryBudget: 16})
	if err != nil {
		t.Fatal(err)
	}
	dataA, hA := blob(1, 5000)
	dataB, hB := blob(2, 5000)
	put(t, s1, dataA, hA)
	put(t, s1, dataB, hB)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{Dir: dir, MemoryBudget: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.DiskBlobs != 2 || st.DeadBlobs != 2 {
		t.Fatalf("adopted: %+v", st)
	}
	if !s2.Claim(hA) {
		t.Fatal("claim of adopted pack blob failed")
	}
	if got := get(t, s2, hA); !bytes.Equal(got, dataA) {
		t.Fatal("claimed pack blob diverged")
	}
	// Re-put of the other adopted blob revives without a transfer.
	if wrote := put(t, s2, dataB, hB); wrote {
		t.Fatal("adopted pack blob rewritten")
	}
	if freed := s2.Sweep(); freed != 0 {
		t.Fatalf("sweep freed %d claimed/revived blobs", freed)
	}
}

// TestPackTornTailEveryByteBoundary is the recovery acceptance test: a pack
// holding K records is truncated at EVERY byte offset inside (and at the end
// of) its final record; reopening must always index exactly the records whose
// frames survived whole, quarantine the invalid suffix, and keep serving.
func TestPackTornTailEveryByteBoundary(t *testing.T) {
	// Build a reference pack once.
	master := t.TempDir()
	s, err := Open(Config{Dir: master, MemoryBudget: 16})
	if err != nil {
		t.Fatal(err)
	}
	const records = 3
	var datas [][]byte
	var hashes []extent.Hash
	for i := 0; i < records; i++ {
		data, h := blob(50+i, 600+40*i)
		datas = append(datas, data)
		hashes = append(hashes, h)
		put(t, s, data, h)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	packs := packFilesOnDisk(t, master)
	if len(packs) != 1 {
		t.Fatalf("expected one pack, got %v", packs)
	}
	full, err := os.ReadFile(filepath.Join(master, packs[0]))
	if err != nil {
		t.Fatal(err)
	}
	// Find where the last record begins by re-framing the first two.
	lastStart := len(packMagic)
	for i := 0; i < records-1; i++ {
		_, _, _, _, n, ok := parseRecord(full[lastStart:])
		if !ok {
			t.Fatal("reference pack does not parse")
		}
		lastStart += n
	}

	for cut := lastStart; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, packs[0]), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(Config{Dir: dir, MemoryBudget: 16})
		if err != nil {
			t.Fatalf("cut=%d: open failed: %v", cut, err)
		}
		wantRecords := records - 1
		wantTorn := int64(cut - lastStart)
		if cut == len(full) {
			wantRecords, wantTorn = records, 0
		}
		st := s2.Stats()
		if st.DiskBlobs != int64(wantRecords) {
			t.Fatalf("cut=%d: adopted %d records, want %d", cut, st.DiskBlobs, wantRecords)
		}
		if st.PackTornBytes != wantTorn {
			t.Fatalf("cut=%d: torn bytes %d, want %d", cut, st.PackTornBytes, wantTorn)
		}
		for i := 0; i < wantRecords; i++ {
			if !s2.Claim(hashes[i]) {
				t.Fatalf("cut=%d: surviving record %d not claimable", cut, i)
			}
			if got := get(t, s2, hashes[i]); !bytes.Equal(got, datas[i]) {
				t.Fatalf("cut=%d: surviving record %d diverged", cut, i)
			}
		}
		if wantTorn > 0 {
			if _, err := os.Stat(filepath.Join(dir, packs[0]+".torn")); err != nil {
				t.Fatalf("cut=%d: torn tail not quarantined: %v", cut, err)
			}
			info, err := os.Stat(filepath.Join(dir, packs[0]))
			if err != nil || info.Size() != int64(lastStart) {
				t.Fatalf("cut=%d: pack not truncated to valid prefix (%v, %d)", cut, err, info.Size())
			}
		}
		// The truncated pack keeps accepting service: a new put + reopen.
		fresh, fh := blob(90, 700)
		put(t, s2, fresh, fh)
		if got := get(t, s2, fh); !bytes.Equal(got, fresh) {
			t.Fatalf("cut=%d: post-recovery put diverged", cut)
		}
		s2.Close()
	}
}

// TestPackCompaction: sweeping most of a sealed pack's records pushes its
// garbage ratio over the threshold; compaction rewrites the survivors and
// unlinks the file, and the survivors stay readable.
func TestPackCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny target so the first few puts seal a pack quickly.
	s, err := Open(Config{Dir: dir, MemoryBudget: 16, PackTargetBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var hashes []extent.Hash
	var datas [][]byte
	for i := 0; i < 12; i++ {
		data, h := blob(200+i, 1024)
		datas = append(datas, data)
		hashes = append(hashes, h)
		put(t, s, data, h)
	}
	before := s.Stats()
	if before.PackFiles < 3 {
		t.Fatalf("packFiles = %d, want several sealed packs", before.PackFiles)
	}
	// Kill every record except the survivors.
	survivors := map[int]bool{0: true, 5: true, 11: true}
	for i, h := range hashes {
		if !survivors[i] {
			s.Drop(h)
		}
	}
	if freed := s.Sweep(); freed != len(hashes)-len(survivors) {
		t.Fatalf("sweep freed %d, want %d", freed, len(hashes)-len(survivors))
	}
	after := s.Stats()
	if after.PackCompactions == 0 {
		t.Fatalf("no compactions after sweeping %d/%d records: %+v", len(hashes)-len(survivors), len(hashes), after)
	}
	if after.PackFiles >= before.PackFiles {
		t.Fatalf("compaction did not retire packs: %d -> %d", before.PackFiles, after.PackFiles)
	}
	for i := range hashes {
		if survivors[i] {
			if got := get(t, s, hashes[i]); !bytes.Equal(got, datas[i]) {
				t.Fatalf("survivor %d diverged after compaction", i)
			}
		} else if _, err := s.Get(hashes[i]); err == nil {
			t.Fatalf("swept record %d still served", i)
		}
	}
}

// TestPackCompactionUnderChurn hammers Get/Put/Drop/Sweep concurrently with
// tiny packs and an aggressive garbage ratio so compactions run constantly;
// referenced (never-dropped) blobs must stay byte-identical throughout.
// Run with -race this also shakes out the relocMu protocol.
func TestPackCompactionUnderChurn(t *testing.T) {
	s, err := Open(Config{
		Dir:              t.TempDir(),
		MemoryBudget:     16, // evict everything: reads must hit the packs
		PackTargetBytes:  2 << 10,
		PackGarbageRatio: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Pinned blobs: put once, never dropped (the archive would hold refs).
	const pinned = 10
	var pinData [][]byte
	var pinHash []extent.Hash
	for i := 0; i < pinned; i++ {
		data, h := blob(300+i, 700+i)
		pinData = append(pinData, data)
		pinHash = append(pinHash, h)
		put(t, s, data, h)
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				// Churn: private blob, read back, drop, sweep (compact).
				data, h := blob(1000+w*1000+i, 512+w)
				put(t, s, data, h)
				if got := get(t, s, h); !bytes.Equal(got, data) {
					t.Errorf("worker %d: churn blob diverged", w)
					return
				}
				s.Drop(h)
				if i%3 == 0 {
					s.Sweep()
				}
				// Every pinned blob must survive whatever compaction did.
				p := (w + i) % pinned
				if got := get(t, s, pinHash[p]); !bytes.Equal(got, pinData[p]) {
					t.Errorf("worker %d: pinned blob %d corrupted under compaction churn", w, p)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Sweep()
	for i := 0; i < pinned; i++ {
		if got := get(t, s, pinHash[i]); !bytes.Equal(got, pinData[i]) {
			t.Fatalf("pinned blob %d corrupted after churn", i)
		}
	}
	if st := s.Stats(); st.PackCompactions == 0 {
		t.Logf("warning: churn produced no compactions (%+v)", st)
	}
}

// TestPackCompressedRecords: compressed payloads round-trip through packs
// with the hash verified on the uncompressed bytes.
func TestPackCompressedRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, MemoryBudget: 16, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	zdata, zh := compressible(7, 8<<10)
	put(t, s, zdata, zh)
	st := s.Stats()
	if st.PackAppends != 1 || st.DiskBytes >= st.DiskLogicalBytes {
		t.Fatalf("compressed pack record not smaller: %+v", st)
	}
	if got := get(t, s, zh); !bytes.Equal(got, zdata) {
		t.Fatal("compressed pack blob diverged")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Survives adoption with the exact logical length (no page-in correction
	// needed — the frame carries it).
	s2, err := Open(Config{Dir: dir, MemoryBudget: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.DiskLogicalBytes != int64(len(zdata)) {
		t.Fatalf("adopted logical bytes = %d, want %d", st.DiskLogicalBytes, len(zdata))
	}
	if got := get(t, s2, zh); !bytes.Equal(got, zdata) {
		t.Fatal("adopted compressed pack blob diverged")
	}
}

// TestLockfileSingleOwner: the archive.lock file makes a second concurrent
// open of the same directory fail fast; Close releases it; a lock from a
// dead process is stolen.
func TestLockfileSingleOwner(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Config{Dir: dir, MemoryBudget: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir, MemoryBudget: 16}); err == nil {
		t.Fatal("second open of a locked dir succeeded")
	} else if !strings.Contains(err.Error(), "locked by pid") {
		t.Fatalf("second open failed for the wrong reason: %v", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, lockName)); !os.IsNotExist(err) {
		t.Fatalf("lockfile survived Close: %v", err)
	}

	// A lock whose owner is gone is stolen (pid 1 is alive → not stolen;
	// an absurd pid is dead → stolen).
	if err := os.WriteFile(filepath.Join(dir, lockName), []byte("999999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{Dir: dir, MemoryBudget: 16})
	if err != nil {
		t.Fatalf("stale lock not stolen: %v", err)
	}
	s2.Close()

	if err := os.WriteFile(filepath.Join(dir, lockName), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir, MemoryBudget: 16}); err == nil {
		t.Fatal("lock held by a live pid was stolen")
	}
	os.Remove(filepath.Join(dir, lockName))
}

// TestCrashReleasesLockAndAdoptsUnsealedPack: Crash releases the lock
// without sealing; the next open adopts the unsealed active pack's records
// (they are self-framing) and keeps serving.
func TestCrashReleasesLockAndAdoptsUnsealedPack(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Config{Dir: dir, MemoryBudget: 16})
	if err != nil {
		t.Fatal(err)
	}
	data, h := blob(60, 3000)
	put(t, s1, data, h)
	s1.Crash()

	s2, err := Open(Config{Dir: dir, MemoryBudget: 16})
	if err != nil {
		t.Fatalf("open after crash: %v", err)
	}
	defer s2.Close()
	if !s2.Claim(h) {
		t.Fatal("record from the crashed store's active pack not adopted")
	}
	if got := get(t, s2, h); !bytes.Equal(got, data) {
		t.Fatal("adopted record diverged")
	}
}

// TestPackFsyncPolicies: always flushes per append, group flushes at the
// Sync barrier (coalescing), none never flushes.
func TestPackFsyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		policy fsyncer.Policy
		check  func(t *testing.T, s *Store)
	}{
		{fsyncer.PolicyNone, func(t *testing.T, s *Store) {
			if got := s.Stats().Fsyncs; got != 0 {
				t.Fatalf("none issued %d fsyncs", got)
			}
		}},
		{fsyncer.PolicyAlways, func(t *testing.T, s *Store) {
			if got := s.Stats().Fsyncs; got < 4 {
				t.Fatalf("always issued %d fsyncs for 4 appends", got)
			}
		}},
		{fsyncer.PolicyGroup, func(t *testing.T, s *Store) {
			before := s.Stats().Fsyncs
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			if got := s.Stats().Fsyncs; got != before+1 {
				t.Fatalf("group barrier issued %d fsyncs, want 1", got-before)
			}
		}},
	} {
		t.Run(tc.policy.String(), func(t *testing.T) {
			s, err := Open(Config{Dir: t.TempDir(), MemoryBudget: 16, Fsync: tc.policy})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for i := 0; i < 4; i++ {
				data, h := blob(70+i, 900)
				put(t, s, data, h)
			}
			tc.check(t, s)
			// Whatever the policy, the data reads back.
			for i := 0; i < 4; i++ {
				data, h := blob(70+i, 900)
				if got := get(t, s, h); !bytes.Equal(got, data) {
					t.Fatalf("blob %d diverged under policy %v", i, tc.policy)
				}
			}
		})
	}
}

var _ = fmt.Sprintf // keep fmt for debug edits
