package chunkdisk

// Packfile side of the store: blobs at or below Config.PackThreshold —
// version tails and single-chunk deltas, i.e. the overwhelming majority of
// blobs a small-edit commit storm produces — are APPENDED to shared,
// CRC-framed packfiles instead of costing one create+write+rename file cycle
// each. N small commits become one sequential append stream.
//
// Layout: pack-<seq>.pk files at the store root, next to the ab/cdef loose
// fan-out. A pack starts with an 8-byte magic and then holds self-framing
// records:
//
//	uint32 dataLen | uint32 logicalLen | uint32 CRC-32(hash‖flags‖data)
//	| hash [32] | flags [1] | data [dataLen]
//
// flags bit0 marks flate-compressed data (logicalLen is the uncompressed
// length; the content hash always covers the uncompressed bytes, verified on
// page-in exactly like loose blobs). There is no separate index file: the
// in-memory index (shard onDisk maps pointing at pack/offset) is rebuilt by
// scanning the packs on open. A crash mid-append leaves a torn final record;
// open quarantines the invalid suffix to pack-<seq>.torn and truncates the
// pack to its longest valid prefix — the catalog.torn recipe.
//
// One pack is ACTIVE (receiving appends) at a time; at PackTargetBytes it is
// sealed (fsynced under policies that sync, then closed) and a new one
// starts. Sweep retires dead pack records in place — the index entry goes
// away, the bytes become dead space — and when a sealed pack's garbage ratio
// exceeds PackGarbageRatio its surviving records are rewritten into the
// active pack and the old file is unlinked (compaction). Readers and the
// compactor synchronize on relocMu: a page-in holds it shared across the
// read, compaction holds it exclusive only for the final retire-and-unlink,
// and re-reads the index entry after locking so a blob moved under it is
// found at its new address. Lock order is relocMu → shard mutex.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"datalinks/internal/extent"
	"datalinks/internal/fsyncer"
)

// Pack tuning defaults (Config overrides).
const (
	// DefaultPackThreshold packs blobs at or below this logical size — one
	// extent chunk, so every tail and every single-chunk delta batches.
	DefaultPackThreshold = 64 << 10
	// DefaultPackTargetBytes seals the active pack once it grows past this.
	DefaultPackTargetBytes = 4 << 20
	// DefaultPackGarbageRatio compacts a sealed pack once this fraction of
	// its payload bytes is dead.
	DefaultPackGarbageRatio = 0.5
)

// packMagic identifies a packfile (format name + version).
var packMagic = [8]byte{'D', 'L', 'P', 'A', 'C', 'K', '0', '1'}

const (
	packRecHdrLen = 4 + 4 + 4 // dataLen | logicalLen | crc
	packRecMeta   = 32 + 1    // hash | flags
	// packMaxRecordBytes bounds one record while scanning (a corrupted
	// length prefix must not be trusted).
	packMaxRecordBytes = 64 << 20

	packFlagCompressed = 1
)

// packMeta is the bookkeeping for one packfile.
type packMeta struct {
	seq    int64
	path   string
	size   int64 // file length (header + frames)
	live   int64 // payload bytes of records the index still points at
	dead   int64 // payload bytes of retired records (compaction fuel)
	blobs  int64 // records the index still points at
	sealed bool  // no longer the append target
}

// garbage reports the dead fraction of the pack's payload.
func (pm *packMeta) garbage() float64 {
	total := pm.live + pm.dead
	if total == 0 {
		return 0
	}
	return float64(pm.dead) / float64(total)
}

// packSet owns every packfile of one store.
type packSet struct {
	s      *Store
	dir    string
	target int64
	ratio  float64

	// mu guards appends, sealing/rotation, and the packs map. The active
	// file handle is written only under it.
	mu       sync.Mutex
	active   *os.File
	activePM *packMeta
	packs    map[int64]*packMeta
	nextSeq  int64

	// relocMu orders pack reads against compaction's retire-and-unlink:
	// page-ins hold it shared for the duration of the file read, compaction
	// exclusive while unlinking a fully-evacuated pack. Lock order:
	// relocMu before any shard mutex.
	relocMu sync.RWMutex

	// compactMu serializes compactions (concurrent Sweep calls race the
	// trigger; only one evacuation may run).
	compactMu sync.Mutex
}

func newPackSet(s *Store, dir string, target int64, ratio float64) *packSet {
	if target <= 0 {
		target = DefaultPackTargetBytes
	}
	if ratio <= 0 || ratio >= 1 {
		ratio = DefaultPackGarbageRatio
	}
	return &packSet{s: s, dir: dir, target: target, ratio: ratio, packs: make(map[int64]*packMeta), nextSeq: 1}
}

func packName(seq int64) string { return fmt.Sprintf("pack-%08d.pk", seq) }

// parsePackName extracts the sequence from a pack file name.
func parsePackName(name string) (int64, bool) {
	rest, ok := strings.CutPrefix(name, "pack-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".pk")
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || seq <= 0 {
		return 0, false
	}
	return seq, true
}

// recordCRC checksums everything in a frame except the CRC field itself
// (dataLen ‖ logicalLen ‖ hash ‖ flags ‖ data) — a corrupted length field
// must fail validation just like corrupted payload.
func recordCRC(frame []byte) uint32 {
	c := crc32.ChecksumIEEE(frame[0:8])
	return crc32.Update(c, crc32.IEEETable, frame[12:])
}

// frameRecord builds the on-disk frame for one record.
func frameRecord(h extent.Hash, data []byte, logical int64, compressed bool) []byte {
	buf := make([]byte, packRecHdrLen+packRecMeta+len(data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(data)))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(logical))
	copy(buf[12:44], h[:])
	var flags byte
	if compressed {
		flags = packFlagCompressed
	}
	buf[44] = flags
	copy(buf[packRecHdrLen+packRecMeta:], data)
	binary.LittleEndian.PutUint32(buf[8:12], recordCRC(buf))
	return buf
}

// parseRecord frames one record off buf. n is total bytes consumed.
func parseRecord(buf []byte) (h extent.Hash, data []byte, logical int64, compressed bool, n int, ok bool) {
	if len(buf) < packRecHdrLen+packRecMeta {
		return h, nil, 0, false, 0, false
	}
	dataLen := binary.LittleEndian.Uint32(buf[0:4])
	logical = int64(binary.LittleEndian.Uint32(buf[4:8]))
	sum := binary.LittleEndian.Uint32(buf[8:12])
	if dataLen > packMaxRecordBytes || len(buf) < packRecHdrLen+packRecMeta+int(dataLen) {
		return h, nil, 0, false, 0, false
	}
	n = packRecHdrLen + packRecMeta + int(dataLen)
	if recordCRC(buf[:n]) != sum {
		return h, nil, 0, false, 0, false
	}
	copy(h[:], buf[12:44])
	compressed = buf[44]&packFlagCompressed != 0
	data = buf[packRecHdrLen+packRecMeta : n]
	return h, data, logical, compressed, n, true
}

// append writes one record to the active pack, creating or rotating packs as
// needed, and returns the data's pack sequence and byte offset. Under
// PolicyAlways the append is fsynced before returning.
func (ps *packSet) append(h extent.Hash, data []byte, logical int64, compressed bool) (seq, off int64, err error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.active == nil {
		if err := ps.openActiveLocked(); err != nil {
			return 0, 0, err
		}
	}
	pm := ps.activePM
	frame := frameRecord(h, data, logical, compressed)
	if _, werr := ps.active.WriteAt(frame, pm.size); werr != nil {
		// Rewind a partial frame so the next append never lands after
		// garbage; if even the truncate fails, open-time torn-tail recovery
		// covers it.
		_ = ps.active.Truncate(pm.size)
		return 0, 0, fmt.Errorf("chunkdisk: pack append: %w", werr)
	}
	off = pm.size + packRecHdrLen + packRecMeta
	pm.size += int64(len(frame))
	pm.live += int64(len(data))
	pm.blobs++
	ps.s.packAppends.Add(1)
	ps.s.ctrInc(ps.s.mPackAppends)
	if ps.s.sync.Policy() == fsyncer.PolicyAlways {
		// Per-append flush, directly on the handle we hold (the syncer's
		// group callback re-locks ps.mu and is only for the Barrier path).
		if serr := ps.active.Sync(); serr != nil {
			return 0, 0, fmt.Errorf("chunkdisk: pack fsync: %w", serr)
		}
		ps.s.countFsync()
	}
	if pm.size >= ps.target {
		if err := ps.sealActiveLocked(); err != nil {
			return 0, 0, err
		}
	}
	return pm.seq, off, nil
}

// openActiveLocked starts a fresh pack file. Caller holds ps.mu.
func (ps *packSet) openActiveLocked() error {
	seq := ps.nextSeq
	path := filepath.Join(ps.dir, packName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("chunkdisk: pack create: %w", err)
	}
	if _, err := f.WriteAt(packMagic[:], 0); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("chunkdisk: pack header: %w", err)
	}
	if ps.s.sync.Policy() != fsyncer.PolicyNone {
		// The new pack's directory entry must survive a power loss — without
		// this, a crash can vanish the whole file after its appends were
		// acknowledged.
		if err := ps.s.syncDir(ps.dir); err != nil {
			f.Close()
			os.Remove(path)
			return fmt.Errorf("chunkdisk: pack dir sync: %w", err)
		}
	}
	ps.nextSeq++
	pm := &packMeta{seq: seq, path: path, size: int64(len(packMagic))}
	ps.packs[seq] = pm
	ps.active = f
	ps.activePM = pm
	ps.s.filesCreated.Add(1)
	ps.s.packFiles.Add(1)
	return nil
}

// retireActiveLocked takes the active pack out of service: doSync=true (a
// seal, or a clean Close) fsyncs it first under policies that sync — a
// sealed pack is never written again, so this is its last chance to reach
// stable storage; doSync=false (Crash) just closes the handle. Caller holds
// ps.mu.
func (ps *packSet) retireActiveLocked(doSync bool) error {
	f, pm := ps.active, ps.activePM
	if f == nil {
		return nil
	}
	ps.active = nil
	ps.activePM = nil
	pm.sealed = true
	var serr error
	if doSync && ps.s.sync.Policy() != fsyncer.PolicyNone {
		if serr = f.Sync(); serr == nil {
			ps.s.countFsync()
		}
	}
	if cerr := f.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// sealActiveLocked rotates to a fresh pack at the size target. Caller holds
// ps.mu.
func (ps *packSet) sealActiveLocked() error {
	if err := ps.retireActiveLocked(true); err != nil {
		return fmt.Errorf("chunkdisk: pack seal: %w", err)
	}
	return nil
}

// flushActive fsyncs the active pack (the group-commit flush callback); the
// flush is counted HERE, only when a file was actually synced — the barrier
// with no active pack is free. Holding ps.mu across the fsync keeps sealing
// from closing the handle under it; appends stall for the flush, which is
// the group policy's write barrier.
func (ps *packSet) flushActive() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.active == nil {
		return nil
	}
	err := ps.active.Sync()
	if err == nil {
		ps.s.countFsync()
	}
	return err
}

// read returns the payload bytes of a record. Caller holds relocMu (shared),
// so the pack file cannot be unlinked mid-read.
func (ps *packSet) read(seq, off, length int64) ([]byte, error) {
	ps.mu.Lock()
	pm := ps.packs[seq]
	ps.mu.Unlock()
	if pm == nil {
		return nil, fmt.Errorf("chunkdisk: pack %d gone", seq)
	}
	f, err := os.Open(pm.path)
	if err != nil {
		return nil, fmt.Errorf("chunkdisk: %w", err)
	}
	defer f.Close()
	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("chunkdisk: pack read: %w", err)
	}
	return buf, nil
}

// retire accounts swept records as dead space. Called by Sweep after the
// index entries are gone.
func (ps *packSet) retire(deadBySeq map[int64]int64, blobsBySeq map[int64]int64) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for seq, bytes := range deadBySeq {
		pm := ps.packs[seq]
		if pm == nil {
			continue
		}
		pm.live -= bytes
		pm.dead += bytes
		pm.blobs -= blobsBySeq[seq]
		ps.s.packDeadBytes.Add(bytes)
		ps.s.ctrAdd(ps.s.mPackDead, bytes)
	}
}

// maybeCompact evacuates sealed packs whose garbage ratio crossed the
// threshold. Best-effort and non-reentrant: if a compaction is already
// running, this call is a no-op.
func (ps *packSet) maybeCompact() {
	if !ps.compactMu.TryLock() {
		return
	}
	defer ps.compactMu.Unlock()
	ps.mu.Lock()
	var victims []*packMeta
	for _, pm := range ps.packs {
		if !pm.sealed {
			continue
		}
		if pm.blobs == 0 || pm.garbage() > ps.ratio {
			victims = append(victims, pm)
		}
	}
	ps.mu.Unlock()
	sort.Slice(victims, func(i, j int) bool { return victims[i].seq < victims[j].seq })
	for _, pm := range victims {
		if err := ps.compactOne(pm); err != nil {
			return // leave the rest for the next sweep
		}
	}
}

// compactOne rewrites a pack's surviving records into the active pack and
// unlinks the file. Holding compactMu; nothing else relocates concurrently.
func (ps *packSet) compactOne(pm *packMeta) error {
	s := ps.s
	// Collect the survivors: every index entry still pointing into this pack.
	type liveRec struct {
		h    extent.Hash
		meta diskMeta
	}
	var survivors []liveRec
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for h, meta := range sh.onDisk {
			if meta.pack == pm.seq {
				survivors = append(survivors, liveRec{h: h, meta: meta})
			}
		}
		sh.mu.Unlock()
	}
	for _, rec := range survivors {
		data, err := ps.read(pm.seq, rec.meta.off, rec.meta.size)
		if err != nil {
			return err
		}
		newSeq, newOff, err := ps.append(rec.h, data, rec.meta.logical, rec.meta.compressed)
		if err != nil {
			return err
		}
		moved := rec.meta
		moved.pack, moved.off = newSeq, newOff
		sh := s.shardFor(rec.h)
		sh.mu.Lock()
		cur, ok := sh.onDisk[rec.h]
		if ok && cur.pack == pm.seq && cur.off == rec.meta.off {
			sh.onDisk[rec.h] = moved
		} else {
			// The blob was swept (or somehow relocated) between collection
			// and now: the fresh copy is instantly dead space in its new pack.
			ok = false
		}
		sh.mu.Unlock()
		if !ok {
			ps.retire(map[int64]int64{newSeq: moved.size}, map[int64]int64{newSeq: 1})
		}
	}
	// Survivors must be durable in their new home before the old one goes
	// away (a crash in between must not lose referenced blobs).
	if s.sync.Policy() != fsyncer.PolicyNone {
		if err := ps.flushActive(); err != nil {
			return err
		}
	}
	// Retire the file: exclusive relocMu waits out in-flight page-ins that
	// resolved to the old address.
	ps.relocMu.Lock()
	err := os.Remove(pm.path)
	ps.relocMu.Unlock()
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	ps.mu.Lock()
	delete(ps.packs, pm.seq)
	ps.mu.Unlock()
	s.packFiles.Add(-1)
	s.packDeadBytes.Add(-pm.dead)
	s.ctrAdd(s.mPackDead, -pm.dead)
	s.packCompactions.Add(1)
	return nil
}

// close retires the active pack. clean=true (Close) syncs it under policies
// that sync; a Crash skips even that.
func (ps *packSet) close(clean bool) error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.retireActiveLocked(clean)
}

// adoptPacks indexes the packfiles a previous process left in the directory,
// truncating torn tails. Runs during Open, before any concurrency.
func (s *Store) adoptPacks() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("chunkdisk: %w", err)
	}
	maxSeq := int64(0)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		seq, ok := parsePackName(e.Name())
		if !ok {
			continue
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		if err := s.adoptOnePack(filepath.Join(s.dir, e.Name()), seq); err != nil {
			return err
		}
	}
	if s.packs != nil && maxSeq >= s.packs.nextSeq {
		s.packs.nextSeq = maxSeq + 1
	}
	return nil
}

// adoptOnePack scans one packfile, indexing every valid record as dead
// (Claim or a re-Put revives it, exactly like loose adoption) and
// quarantining+truncating a torn tail.
func (s *Store) adoptOnePack(path string, seq int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("chunkdisk: %w", err)
	}
	if len(data) < len(packMagic) || [8]byte(data[:8]) != packMagic {
		// Not a pack we understand: quarantine the whole file rather than
		// guessing (never delete bytes that might matter).
		s.packTornBytes.Add(int64(len(data)))
		if err := os.Rename(path, path+".torn"); err != nil {
			return fmt.Errorf("chunkdisk: quarantining foreign pack: %w", err)
		}
		return nil
	}
	pm := &packMeta{seq: seq, path: path, sealed: true}
	off := int64(len(packMagic))
	for off < int64(len(data)) {
		h, payload, logical, compressed, n, ok := parseRecord(data[off:])
		if !ok {
			break
		}
		recOff := off + packRecHdrLen + packRecMeta
		sh := s.shardFor(h)
		sh.mu.Lock()
		if _, dup := sh.onDisk[h]; dup {
			// The hash is already indexed (an earlier record, or a loose
			// file): this record's bytes are dead space from the start.
			pm.dead += int64(len(payload))
			sh.mu.Unlock()
			off += int64(n)
			continue
		}
		sh.onDisk[h] = diskMeta{size: int64(len(payload)), logical: logical, compressed: compressed, pack: seq, off: recOff}
		sh.dead[h] = struct{}{}
		sh.mu.Unlock()
		s.diskBlobs.Add(1)
		s.diskBytes.Add(int64(len(payload)))
		s.diskLogical.Add(logical)
		s.deadBlobs.Add(1)
		pm.live += int64(len(payload))
		pm.blobs++
		off += int64(n)
	}
	if torn := int64(len(data)) - off; torn > 0 {
		// The crash's evidence is preserved, the pack recovers its longest
		// valid prefix — the catalog.torn recipe.
		if err := os.WriteFile(path+".torn", data[off:], 0o644); err != nil {
			return fmt.Errorf("chunkdisk: quarantining torn pack tail: %w", err)
		}
		if err := os.Truncate(path, off); err != nil {
			return fmt.Errorf("chunkdisk: truncating torn pack tail: %w", err)
		}
		s.packTornBytes.Add(torn)
	}
	pm.size = off
	s.packs.packs[seq] = pm
	s.packFiles.Add(1)
	s.packDeadBytes.Add(pm.dead)
	s.ctrAdd(s.mPackDead, pm.dead)
	return nil
}
