// Package chunkdisk is the durable tier under the archive server: a
// hash-addressed blob store on a real directory with a bounded in-memory LRU
// of hot chunks in front of it.
//
// The archive's dedup table owns the reference counts; this package owns the
// bytes. Every blob is written through to disk at Put time (the durability
// point), and the LRU decides which blobs also stay resident in memory.
// Get serves residents from memory and pages evicted blobs back in from
// disk, verifying their content hash on the way (a corrupted or truncated
// chunk file surfaces as an error, never as silent bad data).
//
// Deletion is deferred: when the archive drops the last reference to a hash
// it calls Drop, which releases the memory copy immediately but only marks
// the disk file dead. A background sweep (archive GC) unlinks dead files in
// batches — so TruncateAfter/Drop never pay disk I/O inline, and a hash that
// is re-archived before the sweep is revived without a device transfer.
//
// With Dir == "" the store runs memory-only: no spill, no eviction, and Drop
// frees immediately — the semantics the archive had before the disk tier.
//
// Blobs are usually extent chunks (exactly extent.ChunkSize bytes) but the
// store is length-agnostic: the archive also stores version tails (the
// sub-chunk final segment of a file) through the same interface.
package chunkdisk

import (
	"bytes"
	"compress/flate"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datalinks/internal/extent"
)

// shardCount must be a power of two. The LRU budget is split evenly across
// shards, so eviction is approximate-global but never cross-shard locked.
const shardCount = 16

// DefaultMemoryBudget bounds the resident LRU when the caller does not.
const DefaultMemoryBudget = 64 << 20

// Config configures a store.
type Config struct {
	// Dir is the root of the on-disk store. Empty means memory-only (no
	// spill, no eviction — the pre-tier archive semantics).
	Dir string
	// MemoryBudget is the LRU budget in bytes; <= 0 means
	// DefaultMemoryBudget. Ignored in memory-only mode (nothing backs an
	// evicted chunk there).
	MemoryBudget int64
	// Compress writes spilled blobs through compress/flate when that makes
	// them smaller (a blob that would grow — e.g. already-random content —
	// stays raw; the decision is per blob, recorded in the file name's ".z"
	// suffix). Content hashes are always verified on the UNCOMPRESSED bytes,
	// so a corrupted compressed file still surfaces as an error on page-in.
	// A store opened without Compress still reads ".z" blobs left by an
	// earlier compressed store, and vice versa.
	Compress bool
}

// Stats is a point-in-time view of the tier counters.
type Stats struct {
	Spills        int64 // blobs written to disk
	PageIns       int64 // blobs read back from disk on Get
	Evictions     int64 // resident blobs dropped by the LRU
	GCFreed       int64 // dead disk files unlinked by Sweep
	ResidentBlobs int64 // blobs currently in the LRU
	ResidentBytes int64 // bytes currently in the LRU
	DiskBlobs     int64 // blobs currently on disk (incl. dead, pre-sweep)
	DiskBytes     int64 // physical bytes currently on disk (post-compression)
	// DiskLogicalBytes is the uncompressed size of the on-disk blobs whose
	// logical size is known: everything written by this process, plus adopted
	// raw blobs. An adopted ".z" blob is counted at its physical size until
	// its first page-in learns (and corrects to) the real logical length.
	DiskLogicalBytes int64
	DeadBlobs        int64 // disk blobs awaiting sweep
}

// entry is one resident blob.
type entry struct {
	hash  extent.Hash
	chunk *extent.Chunk // retained while resident
	size  int64
	elem  *list.Element
	// writing pins the entry against eviction until its disk write-through
	// completes — a reader paging it "back in" before the file exists would
	// otherwise race the first write.
	writing bool
}

// diskMeta describes one on-disk blob file.
type diskMeta struct {
	size       int64 // physical file length
	logical    int64 // uncompressed length (== size for raw blobs)
	compressed bool  // stored with the ".z" suffix, flate-encoded
}

// shard is one stripe of the store.
type shard struct {
	mu       sync.Mutex
	resident map[extent.Hash]*entry
	lru      *list.List // of *entry; front = hottest
	resBytes int64
	onDisk   map[extent.Hash]diskMeta
	dead     map[extent.Hash]struct{} // on disk, unreferenced, awaiting sweep
	sweeping map[extent.Hash]struct{} // claimed by an in-flight sweep
}

// Store is a tiered blob store. Safe for concurrent use.
type Store struct {
	dir      string // "" = memory-only
	budget   int64  // per shard
	compress bool
	shards   [shardCount]shard

	spills      atomic.Int64
	pageIns     atomic.Int64
	evictions   atomic.Int64
	gcFreed     atomic.Int64
	resBlobs    atomic.Int64
	resBytes    atomic.Int64
	diskBlobs   atomic.Int64
	diskBytes   atomic.Int64
	diskLogical atomic.Int64
	deadBlobs   atomic.Int64
}

// Open returns a store over cfg.Dir, creating the directory if needed. Blob
// files already present (a previous process's store) are adopted as dead:
// nothing references them yet, so the first sweep reclaims whatever the new
// archive does not re-intern first.
func Open(cfg Config) (*Store, error) {
	budget := cfg.MemoryBudget
	if budget <= 0 {
		budget = DefaultMemoryBudget
	}
	s := &Store{dir: cfg.Dir, budget: budget / shardCount, compress: cfg.Compress}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.resident = make(map[extent.Hash]*entry)
		sh.lru = list.New()
		sh.onDisk = make(map[extent.Hash]diskMeta)
		sh.dead = make(map[extent.Hash]struct{})
		sh.sweeping = make(map[extent.Hash]struct{})
	}
	if cfg.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("chunkdisk: %w", err)
	}
	if err := s.adoptExisting(); err != nil {
		return nil, err
	}
	return s, nil
}

// adoptExisting indexes blob files left by a previous store over the same
// directory, marking them dead until something re-interns them.
func (s *Store) adoptExisting() error {
	subdirs, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("chunkdisk: %w", err)
	}
	for _, sub := range subdirs {
		if !sub.IsDir() {
			// A crash between CreateTemp and Rename strands a tmp-* file at
			// the root; nothing will ever reference it, so reclaim it now.
			if len(sub.Name()) >= 4 && sub.Name()[:4] == "tmp-" {
				os.Remove(filepath.Join(s.dir, sub.Name()))
			}
			continue
		}
		if len(sub.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sub.Name()))
		if err != nil {
			return fmt.Errorf("chunkdisk: %w", err)
		}
		for _, fi := range files {
			name, compressed := strings.CutSuffix(fi.Name(), ".z")
			raw, err := hex.DecodeString(sub.Name() + name)
			if err != nil || len(raw) != len(extent.Hash{}) {
				continue // not a blob file; leave it alone
			}
			info, err := fi.Info()
			if err != nil {
				continue
			}
			var h extent.Hash
			copy(h[:], raw)
			sh := s.shardFor(h)
			sh.mu.Lock()
			// Logical size of an adopted compressed blob is unknown until it
			// is read; account its physical size (see Stats.DiskLogicalBytes).
			sh.onDisk[h] = diskMeta{size: info.Size(), logical: info.Size(), compressed: compressed}
			sh.dead[h] = struct{}{}
			sh.mu.Unlock()
			s.diskBlobs.Add(1)
			s.diskBytes.Add(info.Size())
			s.diskLogical.Add(info.Size())
			s.deadBlobs.Add(1)
		}
	}
	return nil
}

// shardFor picks the shard owning a hash.
func (s *Store) shardFor(h extent.Hash) *shard {
	return &s.shards[h[0]&(shardCount-1)]
}

// path returns the blob file for a hash: dir/ab/cdef… (two-level fan-out),
// with a ".z" suffix for flate-compressed blobs.
func (s *Store) path(h extent.Hash, compressed bool) string {
	hx := hex.EncodeToString(h[:])
	name := hx[2:]
	if compressed {
		name += ".z"
	}
	return filepath.Join(s.dir, hx[:2], name)
}

// Put stores the chunk's bytes under h, which the caller guarantees is the
// chunk's content hash. It admits the chunk to the resident LRU and, in disk
// mode, writes the blob through to disk before returning. wrote reports
// whether a device transfer happened — false when the blob was already on
// disk (a dead blob revived before its sweep).
func (s *Store) Put(h extent.Hash, c *extent.Chunk) (wrote bool, err error) {
	size := int64(len(c.Data()))
	sh := s.shardFor(h)
	for {
		sh.mu.Lock()
		if _, claimed := sh.sweeping[h]; !claimed {
			break
		}
		// A sweep is unlinking this very file; wait for it to finish so our
		// fresh write cannot be deleted under us.
		sh.mu.Unlock()
		time.Sleep(50 * time.Microsecond)
	}
	if e, ok := sh.resident[h]; ok {
		// Already resident (another Put of the same content raced us). A
		// resident blob is never in the dead set — Drop evicts as it marks.
		sh.lru.MoveToFront(e.elem)
		sh.mu.Unlock()
		return false, nil
	}
	e := &entry{hash: h, chunk: c.RetainChunk(), size: size}
	e.elem = sh.lru.PushFront(e)
	sh.resident[h] = e
	sh.resBytes += size
	s.resBlobs.Add(1)
	s.resBytes.Add(size)
	if s.dir == "" {
		sh.mu.Unlock()
		return true, nil
	}
	if _, onDisk := sh.onDisk[h]; onDisk {
		// Revive: the bytes are still on the device; no transfer needed.
		if _, wasDead := sh.dead[h]; wasDead {
			delete(sh.dead, h)
			s.deadBlobs.Add(-1)
		}
		s.evictLocked(sh)
		sh.mu.Unlock()
		return false, nil
	}
	e.writing = true // pin until the file exists
	sh.mu.Unlock()

	// Compress outside the shard lock; keep the compressed form only when it
	// actually shrinks the blob.
	data := c.Data()
	compressed := false
	if s.compress {
		if z := deflate(data); len(z) < len(data) {
			data = z
			compressed = true
		}
	}
	werr := s.writeBlob(s.path(h, compressed), data)

	sh.mu.Lock()
	e.writing = false
	if werr == nil {
		sh.onDisk[h] = diskMeta{size: int64(len(data)), logical: size, compressed: compressed}
		s.diskBlobs.Add(1)
		s.diskBytes.Add(int64(len(data)))
		s.diskLogical.Add(size)
		s.spills.Add(1)
	} else {
		// The write-through failed: an unbacked resident blob would read
		// fine until its eviction, then vanish — evict it now so the failure
		// stays visible (refcount holders get "not stored", and the
		// archiver's pending-archive row retries the version in recovery).
		sh.lru.Remove(e.elem)
		delete(sh.resident, h)
		sh.resBytes -= e.size
		e.chunk.ReleaseChunk()
		s.resBlobs.Add(-1)
		s.resBytes.Add(-e.size)
	}
	s.evictLocked(sh)
	sh.mu.Unlock()
	if werr != nil {
		return false, werr
	}
	return true, nil
}

// deflate returns data flate-compressed at the default level.
func deflate(data []byte) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return data
	}
	if _, err := w.Write(data); err != nil || w.Close() != nil {
		return data
	}
	return buf.Bytes()
}

// inflate reverses deflate.
func inflate(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	out, err := io.ReadAll(r)
	if cerr := r.Close(); err == nil {
		err = cerr
	}
	return out, err
}

// writeBlob persists data atomically (temp file + rename).
func (s *Store) writeBlob(dst string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("chunkdisk: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("chunkdisk: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("chunkdisk: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("chunkdisk: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("chunkdisk: %w", err)
	}
	return nil
}

// Get returns a retained chunk holding the blob's bytes, paging it in from
// disk if it was evicted. The caller must release the returned chunk. The
// caller guarantees the blob is still referenced (the archive pins its
// refcount across materialization), so the file cannot be swept mid-read.
func (s *Store) Get(h extent.Hash) (*extent.Chunk, error) {
	sh := s.shardFor(h)
	sh.mu.Lock()
	if e, ok := sh.resident[h]; ok {
		sh.lru.MoveToFront(e.elem)
		c := e.chunk.RetainChunk()
		sh.mu.Unlock()
		return c, nil
	}
	if s.dir == "" {
		sh.mu.Unlock()
		return nil, fmt.Errorf("chunkdisk: blob %x not stored", h[:8])
	}
	meta, ok := sh.onDisk[h]
	if !ok {
		sh.mu.Unlock()
		return nil, fmt.Errorf("chunkdisk: blob %x not stored", h[:8])
	}
	sh.mu.Unlock()

	data, err := os.ReadFile(s.path(h, meta.compressed))
	if err != nil {
		return nil, fmt.Errorf("chunkdisk: %w", err)
	}
	if meta.compressed {
		if data, err = inflate(data); err != nil {
			return nil, fmt.Errorf("chunkdisk: blob %x undecodable on disk: %w", h[:8], err)
		}
	}
	// The hash always covers the uncompressed bytes.
	if sum := sha256.Sum256(data); extent.Hash(sum) != h {
		return nil, fmt.Errorf("chunkdisk: blob %x corrupted on disk", h[:8])
	}
	c := extent.WrapChunk(data, h)
	s.pageIns.Add(1)

	sh.mu.Lock()
	if meta.compressed && meta.logical != int64(len(data)) {
		// An adopted ".z" blob was accounted at its physical size; the first
		// page-in learns the real logical length — correct the books.
		if m, ok := sh.onDisk[h]; ok && m.compressed {
			s.diskLogical.Add(int64(len(data)) - m.logical)
			m.logical = int64(len(data))
			sh.onDisk[h] = m
		}
	}
	if e, ok := sh.resident[h]; ok {
		// A concurrent Get admitted it first; use the resident copy.
		sh.lru.MoveToFront(e.elem)
		r := e.chunk.RetainChunk()
		sh.mu.Unlock()
		c.ReleaseChunk()
		return r, nil
	}
	e := &entry{hash: h, chunk: c.RetainChunk(), size: int64(len(data))}
	e.elem = sh.lru.PushFront(e)
	sh.resident[h] = e
	sh.resBytes += e.size
	s.resBlobs.Add(1)
	s.resBytes.Add(e.size)
	s.evictLocked(sh)
	sh.mu.Unlock()
	return c, nil
}

// evictLocked drops cold residents until the shard fits its budget. Memory
// mode never evicts (there is no disk copy to page back from).
func (s *Store) evictLocked(sh *shard) {
	if s.dir == "" {
		return
	}
	for sh.resBytes > s.budget {
		el := sh.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*entry)
		if e.writing {
			// The coldest entry is mid-write-through; it cannot be dropped
			// yet and everything hotter is even less evictable.
			return
		}
		sh.lru.Remove(el)
		delete(sh.resident, e.hash)
		sh.resBytes -= e.size
		e.chunk.ReleaseChunk()
		s.resBlobs.Add(-1)
		s.resBytes.Add(-e.size)
		s.evictions.Add(1)
	}
}

// Drop tells the store the last reference to h is gone: the resident copy is
// released immediately (memory returns to baseline without waiting for GC)
// and the disk file, if any, is marked dead for the next sweep.
func (s *Store) Drop(h extent.Hash) {
	sh := s.shardFor(h)
	sh.mu.Lock()
	if e, ok := sh.resident[h]; ok {
		sh.lru.Remove(e.elem)
		delete(sh.resident, h)
		sh.resBytes -= e.size
		e.chunk.ReleaseChunk()
		s.resBlobs.Add(-1)
		s.resBytes.Add(-e.size)
	}
	if _, ok := sh.onDisk[h]; ok {
		if _, wasDead := sh.dead[h]; !wasDead {
			sh.dead[h] = struct{}{}
			s.deadBlobs.Add(1)
		}
	}
	sh.mu.Unlock()
}

// Has reports whether the blob is stored (resident or on disk), without any
// side effect — the archive's replay verifies a whole version's blobs exist
// before Claiming any of them, so a version that turns out unservable never
// un-deadens blobs it will not reference.
func (s *Store) Has(h extent.Hash) bool {
	sh := s.shardFor(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.resident[h]; ok {
		return true
	}
	_, ok := sh.onDisk[h]
	return ok
}

// Claim re-pins an on-disk blob without reading or rewriting it: if the hash
// is stored (resident, or adopted from a previous process's directory), any
// dead mark is cleared and Claim reports true; a missing blob reports false.
// The archive's catalog replay uses it to turn adopted-as-dead blob files
// back into referenced content with zero device transfer — a blob the replay
// does NOT claim stays dead and the next sweep reclaims it.
func (s *Store) Claim(h extent.Hash) bool {
	sh := s.shardFor(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.resident[h]; ok {
		return true
	}
	if _, ok := sh.onDisk[h]; !ok {
		return false
	}
	if _, wasDead := sh.dead[h]; wasDead {
		delete(sh.dead, h)
		s.deadBlobs.Add(-1)
	}
	return true
}

// Sweep unlinks every dead blob file and returns how many it freed — the
// archive's background GC calls this on a timer.
func (s *Store) Sweep() int {
	if s.dir == "" {
		return 0
	}
	freed := 0
	type claimed struct {
		h          extent.Hash
		compressed bool
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		claim := make([]claimed, 0, len(sh.dead))
		for h := range sh.dead {
			claim = append(claim, claimed{h: h, compressed: sh.onDisk[h].compressed})
			sh.sweeping[h] = struct{}{}
			delete(sh.dead, h)
			s.deadBlobs.Add(-1)
		}
		sh.mu.Unlock()
		for _, cl := range claim {
			err := os.Remove(s.path(cl.h, cl.compressed))
			sh.mu.Lock()
			if meta, ok := sh.onDisk[cl.h]; ok {
				delete(sh.onDisk, cl.h)
				s.diskBlobs.Add(-1)
				s.diskBytes.Add(-meta.size)
				s.diskLogical.Add(-meta.logical)
			}
			delete(sh.sweeping, cl.h)
			sh.mu.Unlock()
			if err == nil || os.IsNotExist(err) {
				freed++
				s.gcFreed.Add(1)
			}
		}
	}
	return freed
}

// Stats returns the current tier counters.
func (s *Store) Stats() Stats {
	return Stats{
		Spills:           s.spills.Load(),
		PageIns:          s.pageIns.Load(),
		Evictions:        s.evictions.Load(),
		GCFreed:          s.gcFreed.Load(),
		ResidentBlobs:    s.resBlobs.Load(),
		ResidentBytes:    s.resBytes.Load(),
		DiskBlobs:        s.diskBlobs.Load(),
		DiskBytes:        s.diskBytes.Load(),
		DiskLogicalBytes: s.diskLogical.Load(),
		DeadBlobs:        s.deadBlobs.Load(),
	}
}

// Dir reports the on-disk root ("" in memory-only mode).
func (s *Store) Dir() string { return s.dir }
