// Package chunkdisk is the durable tier under the archive server: a
// hash-addressed blob store on a real directory with a bounded in-memory LRU
// of hot chunks in front of it.
//
// The archive's dedup table owns the reference counts; this package owns the
// bytes. Every blob is written through to disk at Put time (the durability
// point), and the LRU decides which blobs also stay resident in memory.
// Get serves residents from memory and pages evicted blobs back in from
// disk, verifying their content hash on the way (a corrupted or truncated
// chunk file surfaces as an error, never as silent bad data).
//
// Deletion is deferred: when the archive drops the last reference to a hash
// it calls Drop, which releases the memory copy immediately but only marks
// the disk file dead. A background sweep (archive GC) unlinks dead files in
// batches — so TruncateAfter/Drop never pay disk I/O inline, and a hash that
// is re-archived before the sweep is revived without a device transfer.
//
// With Dir == "" the store runs memory-only: no spill, no eviction, and Drop
// frees immediately — the semantics the archive had before the disk tier.
//
// Small blobs — at or below Config.PackThreshold — are batched into
// append-only packfiles instead of costing one file each (see pack.go);
// large blobs keep the loose one-file-per-hash layout. Config.Fsync selects
// the durability policy for all of it (none | group | always, see
// internal/fsyncer), and a single-owner lockfile (archive.lock) keeps two
// processes from corrupting one directory.
//
// Blobs are usually extent chunks (exactly extent.ChunkSize bytes) but the
// store is length-agnostic: the archive also stores version tails (the
// sub-chunk final segment of a file) through the same interface.
package chunkdisk

import (
	"bytes"
	"compress/flate"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datalinks/internal/dirlock"
	"datalinks/internal/extent"
	"datalinks/internal/fsyncer"
	"datalinks/internal/metrics"
)

// shardCount must be a power of two. The LRU budget is split evenly across
// shards, so eviction is approximate-global but never cross-shard locked.
const shardCount = 16

// DefaultMemoryBudget bounds the resident LRU when the caller does not.
const DefaultMemoryBudget = 64 << 20

// Config configures a store.
type Config struct {
	// Dir is the root of the on-disk store. Empty means memory-only (no
	// spill, no eviction — the pre-tier archive semantics).
	Dir string
	// MemoryBudget is the LRU budget in bytes; <= 0 means
	// DefaultMemoryBudget. Ignored in memory-only mode (nothing backs an
	// evicted chunk there).
	MemoryBudget int64
	// Compress writes spilled blobs through compress/flate when that makes
	// them smaller (a blob that would grow — e.g. already-random content —
	// stays raw; the decision is per blob, recorded in the file name's ".z"
	// suffix). Content hashes are always verified on the UNCOMPRESSED bytes,
	// so a corrupted compressed file still surfaces as an error on page-in.
	// A store opened without Compress still reads ".z" blobs left by an
	// earlier compressed store, and vice versa.
	Compress bool
	// PackThreshold batches blobs whose (uncompressed) size is at or below
	// this into packfiles: 0 uses DefaultPackThreshold (one extent chunk,
	// so tails and single-chunk deltas batch), negative disables packing
	// entirely (every blob loose — the pre-packfile layout). Ignored in
	// memory-only mode.
	PackThreshold int64
	// PackTargetBytes seals the active packfile once it grows past this
	// (<= 0: DefaultPackTargetBytes).
	PackTargetBytes int64
	// PackGarbageRatio compacts a sealed packfile once this fraction of its
	// payload is dead (<= 0 or >= 1: DefaultPackGarbageRatio).
	PackGarbageRatio float64
	// Fsync selects the durability policy for blob and pack writes; see
	// internal/fsyncer. The default (PolicyNone) matches the historical
	// rely-on-the-OS behaviour.
	Fsync fsyncer.Policy
	// FsyncMaxDelay, under PolicyGroup, lets a group-commit leader wait this
	// long before flushing so more committers coalesce into its round.
	FsyncMaxDelay time.Duration
	// Metrics, if set, mirrors the tier counters (chunkdisk.fsyncs,
	// chunkdisk.pack.appends, chunkdisk.pack.dead_bytes) into a registry.
	Metrics *metrics.Registry
}

// Stats is a point-in-time view of the tier counters.
type Stats struct {
	Spills        int64 // blobs written to disk
	PageIns       int64 // blobs read back from disk on Get
	Evictions     int64 // resident blobs dropped by the LRU
	GCFreed       int64 // dead disk files unlinked by Sweep
	ResidentBlobs int64 // blobs currently in the LRU
	ResidentBytes int64 // bytes currently in the LRU
	DiskBlobs     int64 // blobs currently on disk (incl. dead, pre-sweep)
	DiskBytes     int64 // physical bytes currently on disk (post-compression)
	// DiskLogicalBytes is the uncompressed size of the on-disk blobs whose
	// logical size is known: everything written by this process, plus adopted
	// raw blobs. An adopted ".z" blob is counted at its physical size until
	// its first page-in learns (and corrects to) the real logical length.
	DiskLogicalBytes int64
	DeadBlobs        int64 // disk blobs awaiting sweep

	// Packfile / durability counters.
	Fsyncs          int64 // physical fdatasync calls issued by this store
	PackAppends     int64 // records appended to packfiles
	PackFiles       int64 // packfiles currently on disk
	PackDeadBytes   int64 // dead payload bytes awaiting compaction
	PackCompactions int64 // packfiles evacuated and unlinked
	PackTornBytes   int64 // invalid pack suffix quarantined at open
	FilesCreated    int64 // files this store created (loose blobs + packs)
}

// entry is one resident blob.
type entry struct {
	hash  extent.Hash
	chunk *extent.Chunk // retained while resident
	size  int64
	elem  *list.Element
	// writing pins the entry against eviction until its disk write-through
	// completes — a reader paging it "back in" before the file exists would
	// otherwise race the first write.
	writing bool
}

// diskMeta describes one on-disk blob: a loose file (pack == 0) or a record
// inside packfile pack at byte offset off.
type diskMeta struct {
	size       int64 // physical payload length
	logical    int64 // uncompressed length (== size for raw blobs)
	compressed bool  // flate-encoded (".z" suffix for loose blobs)
	pack       int64 // packfile sequence, 0 = loose file
	off        int64 // payload offset within the pack
}

// shard is one stripe of the store.
type shard struct {
	mu       sync.Mutex
	resident map[extent.Hash]*entry
	lru      *list.List // of *entry; front = hottest
	resBytes int64
	onDisk   map[extent.Hash]diskMeta
	dead     map[extent.Hash]struct{} // on disk, unreferenced, awaiting sweep
	sweeping map[extent.Hash]struct{} // claimed by an in-flight sweep
}

// Store is a tiered blob store. Safe for concurrent use.
type Store struct {
	dir           string // "" = memory-only
	budget        int64  // per shard
	compress      bool
	packThreshold int64 // pack blobs at or below this; < 0 = packs disabled
	shards        [shardCount]shard

	packs *packSet        // nil when packing is disabled or memory-only
	sync  *fsyncer.Syncer // durability policy (never nil)
	lock  *dirlock.Lock   // archive.lock we own (nil when not held)

	// Optional metrics mirrors (nil without a registry).
	mFsyncs      *metrics.Counter
	mPackAppends *metrics.Counter
	mPackDead    *metrics.Counter

	spills          atomic.Int64
	pageIns         atomic.Int64
	evictions       atomic.Int64
	gcFreed         atomic.Int64
	resBlobs        atomic.Int64
	resBytes        atomic.Int64
	diskBlobs       atomic.Int64
	diskBytes       atomic.Int64
	diskLogical     atomic.Int64
	deadBlobs       atomic.Int64
	fsyncs          atomic.Int64
	packAppends     atomic.Int64
	packFiles       atomic.Int64
	packDeadBytes   atomic.Int64
	packCompactions atomic.Int64
	packTornBytes   atomic.Int64
	filesCreated    atomic.Int64

	closeOnce sync.Once
	closeErr  error
}

// ctrInc / ctrAdd bump an optional registry mirror.
func (s *Store) ctrInc(c *metrics.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (s *Store) ctrAdd(c *metrics.Counter, n int64) {
	if c != nil {
		c.Add(n)
	}
}

// countFsync records one physical fdatasync.
func (s *Store) countFsync() {
	s.fsyncs.Add(1)
	s.ctrInc(s.mFsyncs)
}

// syncDir fsyncs a directory: POSIX does not persist freshly created or
// renamed entries across a power loss without it, so under policies that
// sync, every new file's parent gets one.
func (s *Store) syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	d.Close()
	if serr == nil {
		s.countFsync()
	}
	return serr
}

// Open returns a store over cfg.Dir, creating the directory if needed. Blob
// files already present (a previous process's store) are adopted as dead:
// nothing references them yet, so the first sweep reclaims whatever the new
// archive does not re-intern first. Open takes single ownership of the
// directory via an archive.lock file (O_EXCL + pid): a second live store
// over the same directory fails fast instead of corrupting the first, and a
// lock left by a dead process is stolen.
func Open(cfg Config) (*Store, error) {
	budget := cfg.MemoryBudget
	if budget <= 0 {
		budget = DefaultMemoryBudget
	}
	s := &Store{dir: cfg.Dir, budget: budget / shardCount, compress: cfg.Compress}
	s.packThreshold = cfg.PackThreshold
	if s.packThreshold == 0 {
		s.packThreshold = DefaultPackThreshold
	}
	if cfg.Metrics != nil {
		s.mFsyncs = cfg.Metrics.Counter("chunkdisk.fsyncs")
		s.mPackAppends = cfg.Metrics.Counter("chunkdisk.pack.appends")
		s.mPackDead = cfg.Metrics.Counter("chunkdisk.pack.dead_bytes")
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.resident = make(map[extent.Hash]*entry)
		sh.lru = list.New()
		sh.onDisk = make(map[extent.Hash]diskMeta)
		sh.dead = make(map[extent.Hash]struct{})
		sh.sweeping = make(map[extent.Hash]struct{})
	}
	if cfg.Dir == "" {
		s.sync = fsyncer.New(fsyncer.PolicyNone, 0, func() error { return nil }, nil)
		return s, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("chunkdisk: %w", err)
	}
	if err := s.acquireLock(); err != nil {
		return nil, err
	}
	if s.packThreshold > 0 {
		s.packs = newPackSet(s, cfg.Dir, cfg.PackTargetBytes, cfg.PackGarbageRatio)
	}
	// The flush callback does its own fsync counting (a barrier with no
	// active pack syncs nothing and must not count) — no onSync hook.
	s.sync = fsyncer.New(cfg.Fsync, cfg.FsyncMaxDelay, s.flushForGroup, nil)
	if err := s.adoptExisting(); err != nil {
		s.releaseLock()
		return nil, err
	}
	if s.packs != nil {
		if err := s.adoptPacks(); err != nil {
			s.releaseLock()
			return nil, err
		}
	}
	return s, nil
}

// flushForGroup is the group-commit flush callback: one fdatasync of the
// active packfile covers every pack append that completed before the round
// began. (Loose blobs sync individually at write time under group/always —
// each lives in its own file, so there is nothing to coalesce. The counting
// happens via the syncer's onSync hook.)
func (s *Store) flushForGroup() error {
	if s.packs == nil {
		return nil
	}
	return s.packs.flushActive()
}

// lockName is the single-owner lockfile kept in the store directory.
const lockName = "archive.lock"

// acquireLock takes single ownership of the directory via dirlock, which
// stamps the lockfile with pid + process start token: a dead owner — even
// one whose pid has been recycled by an unrelated process — is stolen from,
// a live owner is refused.
func (s *Store) acquireLock() error {
	lk, err := dirlock.Acquire(s.dir, lockName)
	if err != nil {
		return fmt.Errorf("chunkdisk: %w", err)
	}
	s.lock = lk
	return nil
}

// releaseLock removes the lockfile if this store holds it.
func (s *Store) releaseLock() {
	if s.lock != nil {
		s.lock.Release()
		s.lock = nil
	}
}

// adoptExisting indexes blob files left by a previous store over the same
// directory, marking them dead until something re-interns them.
func (s *Store) adoptExisting() error {
	subdirs, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("chunkdisk: %w", err)
	}
	for _, sub := range subdirs {
		if !sub.IsDir() {
			// A crash between CreateTemp and Rename strands a tmp-* file at
			// the root; nothing will ever reference it, so reclaim it now.
			if len(sub.Name()) >= 4 && sub.Name()[:4] == "tmp-" {
				os.Remove(filepath.Join(s.dir, sub.Name()))
			}
			continue
		}
		if len(sub.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sub.Name()))
		if err != nil {
			return fmt.Errorf("chunkdisk: %w", err)
		}
		for _, fi := range files {
			name, compressed := strings.CutSuffix(fi.Name(), ".z")
			raw, err := hex.DecodeString(sub.Name() + name)
			if err != nil || len(raw) != len(extent.Hash{}) {
				continue // not a blob file; leave it alone
			}
			info, err := fi.Info()
			if err != nil {
				continue
			}
			var h extent.Hash
			copy(h[:], raw)
			sh := s.shardFor(h)
			sh.mu.Lock()
			// Logical size of an adopted compressed blob is unknown until it
			// is read; account its physical size (see Stats.DiskLogicalBytes).
			sh.onDisk[h] = diskMeta{size: info.Size(), logical: info.Size(), compressed: compressed}
			sh.dead[h] = struct{}{}
			sh.mu.Unlock()
			s.diskBlobs.Add(1)
			s.diskBytes.Add(info.Size())
			s.diskLogical.Add(info.Size())
			s.deadBlobs.Add(1)
		}
	}
	return nil
}

// shardFor picks the shard owning a hash.
func (s *Store) shardFor(h extent.Hash) *shard {
	return &s.shards[h[0]&(shardCount-1)]
}

// path returns the blob file for a hash: dir/ab/cdef… (two-level fan-out),
// with a ".z" suffix for flate-compressed blobs.
func (s *Store) path(h extent.Hash, compressed bool) string {
	hx := hex.EncodeToString(h[:])
	name := hx[2:]
	if compressed {
		name += ".z"
	}
	return filepath.Join(s.dir, hx[:2], name)
}

// Put stores the chunk's bytes under h, which the caller guarantees is the
// chunk's content hash. It admits the chunk to the resident LRU and, in disk
// mode, writes the blob through to disk before returning. wrote reports
// whether a device transfer happened — false when the blob was already on
// disk (a dead blob revived before its sweep).
func (s *Store) Put(h extent.Hash, c *extent.Chunk) (wrote bool, err error) {
	size := int64(len(c.Data()))
	sh := s.shardFor(h)
	for {
		sh.mu.Lock()
		if _, claimed := sh.sweeping[h]; !claimed {
			break
		}
		// A sweep is unlinking this very file; wait for it to finish so our
		// fresh write cannot be deleted under us.
		sh.mu.Unlock()
		time.Sleep(50 * time.Microsecond)
	}
	if e, ok := sh.resident[h]; ok {
		// Already resident (another Put of the same content raced us). A
		// resident blob is never in the dead set — Drop evicts as it marks.
		sh.lru.MoveToFront(e.elem)
		sh.mu.Unlock()
		return false, nil
	}
	e := &entry{hash: h, chunk: c.RetainChunk(), size: size}
	e.elem = sh.lru.PushFront(e)
	sh.resident[h] = e
	sh.resBytes += size
	s.resBlobs.Add(1)
	s.resBytes.Add(size)
	if s.dir == "" {
		sh.mu.Unlock()
		return true, nil
	}
	if _, onDisk := sh.onDisk[h]; onDisk {
		// Revive: the bytes are still on the device; no transfer needed.
		if _, wasDead := sh.dead[h]; wasDead {
			delete(sh.dead, h)
			s.deadBlobs.Add(-1)
		}
		s.evictLocked(sh)
		sh.mu.Unlock()
		return false, nil
	}
	e.writing = true // pin until the file exists
	sh.mu.Unlock()

	// Compress outside the shard lock; keep the compressed form only when it
	// actually shrinks the blob.
	data := c.Data()
	compressed := false
	if s.compress {
		if z := deflate(data); len(z) < len(data) {
			data = z
			compressed = true
		}
	}
	// Small blobs append to the shared packfile (one sequential write);
	// large blobs keep the loose one-file-per-hash layout.
	var werr error
	meta := diskMeta{size: int64(len(data)), logical: size, compressed: compressed}
	if s.packs != nil && size <= s.packThreshold {
		meta.pack, meta.off, werr = s.packs.append(h, data, size, compressed)
	} else {
		werr = s.writeBlob(s.path(h, compressed), data)
	}

	sh.mu.Lock()
	e.writing = false
	if werr == nil {
		sh.onDisk[h] = meta
		s.diskBlobs.Add(1)
		s.diskBytes.Add(int64(len(data)))
		s.diskLogical.Add(size)
		s.spills.Add(1)
	} else {
		// The write-through failed: an unbacked resident blob would read
		// fine until its eviction, then vanish — evict it now so the failure
		// stays visible (refcount holders get "not stored", and the
		// archiver's pending-archive row retries the version in recovery).
		sh.lru.Remove(e.elem)
		delete(sh.resident, h)
		sh.resBytes -= e.size
		e.chunk.ReleaseChunk()
		s.resBlobs.Add(-1)
		s.resBytes.Add(-e.size)
	}
	s.evictLocked(sh)
	sh.mu.Unlock()
	if werr != nil {
		return false, werr
	}
	return true, nil
}

// deflate returns data flate-compressed at the default level.
func deflate(data []byte) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return data
	}
	if _, err := w.Write(data); err != nil || w.Close() != nil {
		return data
	}
	return buf.Bytes()
}

// inflate reverses deflate.
func inflate(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	out, err := io.ReadAll(r)
	if cerr := r.Close(); err == nil {
		err = cerr
	}
	return out, err
}

// writeBlob persists data atomically (temp file + rename). Under policies
// that sync, the data is fdatasynced before the rename — a loose blob lives
// in its own file, so group commit has nothing to coalesce and both group
// and always flush inline here.
func (s *Store) writeBlob(dst string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("chunkdisk: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("chunkdisk: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("chunkdisk: %w", err)
	}
	if s.sync.Policy() != fsyncer.PolicyNone {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("chunkdisk: %w", err)
		}
		s.countFsync()
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("chunkdisk: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("chunkdisk: %w", err)
	}
	if s.sync.Policy() != fsyncer.PolicyNone {
		// The rename (and a possibly fresh fan-out subdir) must survive a
		// power loss too: sync the parent, then the root for the subdir's
		// own entry.
		if err := s.syncDir(filepath.Dir(dst)); err != nil {
			return fmt.Errorf("chunkdisk: %w", err)
		}
		if err := s.syncDir(s.dir); err != nil {
			return fmt.Errorf("chunkdisk: %w", err)
		}
	}
	s.filesCreated.Add(1)
	return nil
}

// Get returns a retained chunk holding the blob's bytes, paging it in from
// disk if it was evicted. The caller must release the returned chunk. The
// caller guarantees the blob is still referenced (the archive pins its
// refcount across materialization), so the file cannot be swept mid-read.
func (s *Store) Get(h extent.Hash) (*extent.Chunk, error) {
	sh := s.shardFor(h)
	sh.mu.Lock()
	if e, ok := sh.resident[h]; ok {
		sh.lru.MoveToFront(e.elem)
		c := e.chunk.RetainChunk()
		sh.mu.Unlock()
		return c, nil
	}
	if s.dir == "" {
		sh.mu.Unlock()
		return nil, fmt.Errorf("chunkdisk: blob %x not stored", h[:8])
	}
	meta, ok := sh.onDisk[h]
	if !ok {
		sh.mu.Unlock()
		return nil, fmt.Errorf("chunkdisk: blob %x not stored", h[:8])
	}
	sh.mu.Unlock()

	var data []byte
	var err error
	if meta.pack != 0 {
		data, meta, err = s.readPackBlob(h, meta)
	} else {
		data, err = os.ReadFile(s.path(h, meta.compressed))
		if err != nil {
			err = fmt.Errorf("chunkdisk: %w", err)
		}
	}
	if err != nil {
		return nil, err
	}
	if meta.compressed {
		if data, err = inflate(data); err != nil {
			return nil, fmt.Errorf("chunkdisk: blob %x undecodable on disk: %w", h[:8], err)
		}
	}
	// The hash always covers the uncompressed bytes.
	if sum := sha256.Sum256(data); extent.Hash(sum) != h {
		return nil, fmt.Errorf("chunkdisk: blob %x corrupted on disk", h[:8])
	}
	c := extent.WrapChunk(data, h)
	s.pageIns.Add(1)

	sh.mu.Lock()
	if meta.pack == 0 && meta.compressed && meta.logical != int64(len(data)) {
		// An adopted loose ".z" blob was accounted at its physical size; the
		// first page-in learns the real logical length — correct the books.
		// (Pack records carry their logical length in the frame.)
		if m, ok := sh.onDisk[h]; ok && m.compressed {
			s.diskLogical.Add(int64(len(data)) - m.logical)
			m.logical = int64(len(data))
			sh.onDisk[h] = m
		}
	}
	if e, ok := sh.resident[h]; ok {
		// A concurrent Get admitted it first; use the resident copy.
		sh.lru.MoveToFront(e.elem)
		r := e.chunk.RetainChunk()
		sh.mu.Unlock()
		c.ReleaseChunk()
		return r, nil
	}
	e := &entry{hash: h, chunk: c.RetainChunk(), size: int64(len(data))}
	e.elem = sh.lru.PushFront(e)
	sh.resident[h] = e
	sh.resBytes += e.size
	s.resBlobs.Add(1)
	s.resBytes.Add(e.size)
	s.evictLocked(sh)
	sh.mu.Unlock()
	return c, nil
}

// readPackBlob reads one pack-resident blob. The shared relocMu is held
// across the read so compaction cannot unlink the pack under it, and the
// index entry is re-read after locking: a blob the compactor relocated in
// the window since the caller looked it up is found at its new address.
func (s *Store) readPackBlob(h extent.Hash, meta diskMeta) ([]byte, diskMeta, error) {
	ps := s.packs
	ps.relocMu.RLock()
	defer ps.relocMu.RUnlock()
	sh := s.shardFor(h)
	sh.mu.Lock()
	cur, ok := sh.onDisk[h]
	sh.mu.Unlock()
	if !ok {
		// Swept in the window. Callers pin refcounts across materialization,
		// so this indicates a contract violation — surface it as missing.
		return nil, meta, fmt.Errorf("chunkdisk: blob %x not stored", h[:8])
	}
	meta = cur
	data, err := ps.read(meta.pack, meta.off, meta.size)
	return data, meta, err
}

// evictLocked drops cold residents until the shard fits its budget. Memory
// mode never evicts (there is no disk copy to page back from).
func (s *Store) evictLocked(sh *shard) {
	if s.dir == "" {
		return
	}
	for sh.resBytes > s.budget {
		el := sh.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*entry)
		if e.writing {
			// The coldest entry is mid-write-through; it cannot be dropped
			// yet and everything hotter is even less evictable.
			return
		}
		sh.lru.Remove(el)
		delete(sh.resident, e.hash)
		sh.resBytes -= e.size
		e.chunk.ReleaseChunk()
		s.resBlobs.Add(-1)
		s.resBytes.Add(-e.size)
		s.evictions.Add(1)
	}
}

// Drop tells the store the last reference to h is gone: the resident copy is
// released immediately (memory returns to baseline without waiting for GC)
// and the disk file, if any, is marked dead for the next sweep.
func (s *Store) Drop(h extent.Hash) {
	sh := s.shardFor(h)
	sh.mu.Lock()
	if e, ok := sh.resident[h]; ok {
		sh.lru.Remove(e.elem)
		delete(sh.resident, h)
		sh.resBytes -= e.size
		e.chunk.ReleaseChunk()
		s.resBlobs.Add(-1)
		s.resBytes.Add(-e.size)
	}
	if _, ok := sh.onDisk[h]; ok {
		if _, wasDead := sh.dead[h]; !wasDead {
			sh.dead[h] = struct{}{}
			s.deadBlobs.Add(1)
		}
	}
	sh.mu.Unlock()
}

// Has reports whether the blob is stored (resident or on disk), without any
// side effect — the archive's replay verifies a whole version's blobs exist
// before Claiming any of them, so a version that turns out unservable never
// un-deadens blobs it will not reference.
func (s *Store) Has(h extent.Hash) bool {
	sh := s.shardFor(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.resident[h]; ok {
		return true
	}
	_, ok := sh.onDisk[h]
	return ok
}

// Claim re-pins an on-disk blob without reading or rewriting it: if the hash
// is stored (resident, or adopted from a previous process's directory), any
// dead mark is cleared and Claim reports true; a missing blob reports false.
// The archive's catalog replay uses it to turn adopted-as-dead blob files
// back into referenced content with zero device transfer — a blob the replay
// does NOT claim stays dead and the next sweep reclaims it.
func (s *Store) Claim(h extent.Hash) bool {
	sh := s.shardFor(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.resident[h]; ok {
		return true
	}
	if _, ok := sh.onDisk[h]; !ok {
		return false
	}
	if _, wasDead := sh.dead[h]; wasDead {
		delete(sh.dead, h)
		s.deadBlobs.Add(-1)
	}
	return true
}

// Sweep reclaims every dead blob and returns how many it freed. Loose blobs
// unlink their file; pack-resident blobs retire in place (the index entry
// goes away, the bytes become dead space) and packs whose garbage ratio
// crossed the threshold are compacted. The archive's background GC calls
// this on a timer.
func (s *Store) Sweep() int {
	if s.dir == "" {
		return 0
	}
	freed := 0
	type claimed struct {
		h          extent.Hash
		compressed bool
	}
	packDead := make(map[int64]int64)
	packBlobs := make(map[int64]int64)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		claim := make([]claimed, 0, len(sh.dead))
		for h := range sh.dead {
			meta := sh.onDisk[h]
			if meta.pack != 0 {
				// Retire the record in place: no per-blob file I/O. A reader
				// cannot be mid-read — dead means unreferenced, and readers
				// pin references.
				delete(sh.onDisk, h)
				delete(sh.dead, h)
				s.deadBlobs.Add(-1)
				s.diskBlobs.Add(-1)
				s.diskBytes.Add(-meta.size)
				s.diskLogical.Add(-meta.logical)
				packDead[meta.pack] += meta.size
				packBlobs[meta.pack]++
				freed++
				s.gcFreed.Add(1)
				continue
			}
			claim = append(claim, claimed{h: h, compressed: meta.compressed})
			sh.sweeping[h] = struct{}{}
			delete(sh.dead, h)
			s.deadBlobs.Add(-1)
		}
		sh.mu.Unlock()
		for _, cl := range claim {
			err := os.Remove(s.path(cl.h, cl.compressed))
			sh.mu.Lock()
			if meta, ok := sh.onDisk[cl.h]; ok {
				delete(sh.onDisk, cl.h)
				s.diskBlobs.Add(-1)
				s.diskBytes.Add(-meta.size)
				s.diskLogical.Add(-meta.logical)
			}
			delete(sh.sweeping, cl.h)
			sh.mu.Unlock()
			if err == nil || os.IsNotExist(err) {
				freed++
				s.gcFreed.Add(1)
			}
		}
	}
	if s.packs != nil {
		if len(packDead) > 0 {
			s.packs.retire(packDead, packBlobs)
		}
		s.packs.maybeCompact()
	}
	return freed
}

// Sync is the commit durability barrier: under the group policy it returns
// after a (shared) fdatasync covering every pack append that completed
// before the call; under none and always it returns immediately (nothing
// promised / already flushed per write).
func (s *Store) Sync() error {
	return s.sync.Barrier()
}

// SyncRound is Sync, additionally reporting the group-commit round that made
// the caller's appends durable (0 under none/always). Traces use it.
func (s *Store) SyncRound() (uint64, error) {
	return s.sync.BarrierRound()
}

// Close seals the active packfile (fsyncing it under policies that sync) and
// releases the directory lock. The store must not be used afterwards; a
// memory-only store's Close is a no-op. Idempotent.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		if s.packs != nil {
			s.closeErr = s.packs.close(true)
		}
		s.releaseLock()
	})
	return s.closeErr
}

// Crash simulates process death for tests: pack handles close without any
// flush and the directory lock is released (a real crash releases it too —
// the pid check lets the next open steal it), but no seal-time fsync and no
// final sweep happen. The on-disk state is exactly what the OS had.
func (s *Store) Crash() {
	s.closeOnce.Do(func() {
		if s.packs != nil {
			_ = s.packs.close(false)
		}
		s.releaseLock()
	})
}

// Stats returns the current tier counters.
func (s *Store) Stats() Stats {
	return Stats{
		Spills:           s.spills.Load(),
		PageIns:          s.pageIns.Load(),
		Evictions:        s.evictions.Load(),
		GCFreed:          s.gcFreed.Load(),
		ResidentBlobs:    s.resBlobs.Load(),
		ResidentBytes:    s.resBytes.Load(),
		DiskBlobs:        s.diskBlobs.Load(),
		DiskBytes:        s.diskBytes.Load(),
		DiskLogicalBytes: s.diskLogical.Load(),
		DeadBlobs:        s.deadBlobs.Load(),
		Fsyncs:           s.fsyncs.Load(),
		PackAppends:      s.packAppends.Load(),
		PackFiles:        s.packFiles.Load(),
		PackDeadBytes:    s.packDeadBytes.Load(),
		PackCompactions:  s.packCompactions.Load(),
		PackTornBytes:    s.packTornBytes.Load(),
		FilesCreated:     s.filesCreated.Load(),
	}
}

// Dir reports the on-disk root ("" in memory-only mode).
func (s *Store) Dir() string { return s.dir }
