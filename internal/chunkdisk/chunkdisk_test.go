package chunkdisk

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"datalinks/internal/extent"
)

// blob builds a deterministic test blob and its hash.
func blob(seed, size int) ([]byte, extent.Hash) {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(seed*31 + i)
	}
	return data, sha256.Sum256(data)
}

// put stores a blob, wrapping it as a chunk the way the archive does.
func put(t *testing.T, s *Store, data []byte, h extent.Hash) bool {
	t.Helper()
	c := extent.WrapChunk(append([]byte(nil), data...), h)
	wrote, err := s.Put(h, c)
	c.ReleaseChunk()
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	return wrote
}

func get(t *testing.T, s *Store, h extent.Hash) []byte {
	t.Helper()
	c, err := s.Get(h)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	data := append([]byte(nil), c.Data()...)
	c.ReleaseChunk()
	return data
}

func TestMemoryModeRoundTrip(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, h := blob(1, 1000)
	if !put(t, s, data, h) {
		t.Fatal("first put reported no store")
	}
	if got := get(t, s, h); !bytes.Equal(got, data) {
		t.Fatal("round trip diverged")
	}
	st := s.Stats()
	if st.Spills != 0 || st.DiskBlobs != 0 {
		t.Fatalf("memory mode touched disk: %+v", st)
	}
	// Drop frees immediately in memory mode.
	s.Drop(h)
	if st := s.Stats(); st.ResidentBlobs != 0 {
		t.Fatalf("resident after drop: %+v", st)
	}
	if _, err := s.Get(h); err == nil {
		t.Fatal("get after drop succeeded")
	}
}

func TestDiskSpillPageInAndVerify(t *testing.T) {
	dir := t.TempDir()
	// Budget of 16 bytes = 1 per shard: everything evicts after write.
	// Packing disabled: this test corrupts a LOOSE blob file by path.
	s, err := Open(Config{Dir: dir, MemoryBudget: 16, PackThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	blobs := make(map[int]extent.Hash)
	for i := 0; i < n; i++ {
		data, h := blob(i, 4096+i)
		blobs[i] = h
		put(t, s, data, h)
	}
	st := s.Stats()
	if st.Spills != n || st.DiskBlobs != n {
		t.Fatalf("spills=%d disk=%d, want %d", st.Spills, st.DiskBlobs, n)
	}
	if st.ResidentBlobs != 0 {
		t.Fatalf("resident=%d with 1-byte shard budget", st.ResidentBlobs)
	}
	for i := 0; i < n; i++ {
		data, _ := blob(i, 4096+i)
		if got := get(t, s, blobs[i]); !bytes.Equal(got, data) {
			t.Fatalf("blob %d diverged after page-in", i)
		}
	}
	if st := s.Stats(); st.PageIns != n {
		t.Fatalf("pageIns=%d, want %d", st.PageIns, n)
	}

	// Corrupt a blob file on disk: Get must refuse it, not return bad data.
	h := blobs[7]
	hx := fmt.Sprintf("%x", h[:])
	path := filepath.Join(dir, hx[:2], hx[2:])
	if err := os.WriteFile(path, []byte("corrupted"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(h); err == nil {
		t.Fatal("corrupted blob served without error")
	}
}

func TestLRUKeepsHotBlobsResident(t *testing.T) {
	// All blobs share one shard? No — hashes spread; use a budget that holds
	// roughly half the blobs and verify hot ones survive eviction.
	s, err := Open(Config{Dir: t.TempDir(), MemoryBudget: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var hashes []extent.Hash
	for i := 0; i < 64; i++ {
		data, h := blob(i, 1024)
		hashes = append(hashes, h)
		put(t, s, data, h)
	}
	st := s.Stats()
	if st.ResidentBytes > 64<<10 {
		t.Fatalf("resident %d exceeds budget", st.ResidentBytes)
	}
	if st.Evictions == 0 {
		// 64 KiB of blobs against a 4 KiB per-shard budget must evict.
		t.Fatalf("no evictions: %+v", st)
	}
	// Every blob still readable (memory or page-in).
	for i, h := range hashes {
		data, _ := blob(i, 1024)
		if got := get(t, s, h); !bytes.Equal(got, data) {
			t.Fatalf("blob %d lost", i)
		}
	}
}

func TestSweepFreesDeadAndSparesLive(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), MemoryBudget: 16})
	if err != nil {
		t.Fatal(err)
	}
	dataA, hA := blob(100, 2048)
	dataB, hB := blob(101, 2048)
	put(t, s, dataA, hA)
	put(t, s, dataB, hB)
	s.Drop(hA)
	if st := s.Stats(); st.DeadBlobs != 1 {
		t.Fatalf("dead=%d, want 1", st.DeadBlobs)
	}
	if freed := s.Sweep(); freed != 1 {
		t.Fatalf("swept %d, want 1", freed)
	}
	st := s.Stats()
	if st.DiskBlobs != 1 || st.GCFreed != 1 || st.DeadBlobs != 0 {
		t.Fatalf("after sweep: %+v", st)
	}
	if _, err := s.Get(hA); err == nil {
		t.Fatal("swept blob still served")
	}
	if got := get(t, s, hB); !bytes.Equal(got, dataB) {
		t.Fatal("live blob damaged by sweep")
	}

	// Revive: drop B, re-put the same content before the sweep — no device
	// transfer, and the next sweep must NOT delete it.
	s.Drop(hB)
	if wrote := put(t, s, dataB, hB); wrote {
		t.Fatal("revived blob reported a device transfer")
	}
	if freed := s.Sweep(); freed != 0 {
		t.Fatalf("sweep freed %d revived blobs", freed)
	}
	if got := get(t, s, hB); !bytes.Equal(got, dataB) {
		t.Fatal("revived blob lost")
	}
}

func TestAdoptExistingDirAsDead(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Config{Dir: dir, MemoryBudget: 16})
	if err != nil {
		t.Fatal(err)
	}
	data, h := blob(5, 3000)
	put(t, s1, data, h)
	s1.Close() // the dir has a single owner at a time

	// A new store over the same directory adopts the blob as dead...
	s2, err := Open(Config{Dir: dir, MemoryBudget: 16})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.DiskBlobs != 1 || st.DeadBlobs != 1 {
		t.Fatalf("adopted: %+v", st)
	}
	// ...and a re-put revives it without rewriting.
	if wrote := put(t, s2, data, h); wrote {
		t.Fatal("adopted blob rewritten")
	}
	if freed := s2.Sweep(); freed != 0 {
		t.Fatalf("sweep freed %d adopted+revived blobs", freed)
	}
	if got := get(t, s2, h); !bytes.Equal(got, data) {
		t.Fatal("adopted blob unreadable")
	}
	s2.Close()

	// A third store sweeps the (again unreferenced) blob away.
	s3, err := Open(Config{Dir: dir, MemoryBudget: 16})
	if err != nil {
		t.Fatal(err)
	}
	if freed := s3.Sweep(); freed != 1 {
		t.Fatalf("swept %d orphans, want 1", freed)
	}
}

// TestClaimRepinsAdoptedBlobs: Claim turns an adopted-as-dead blob back into
// referenced content with zero I/O; unclaimed blobs still sweep.
func TestClaimRepinsAdoptedBlobs(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Config{Dir: dir, MemoryBudget: 16})
	if err != nil {
		t.Fatal(err)
	}
	dataA, hA := blob(40, 2000)
	dataB, hB := blob(41, 2000)
	put(t, s1, dataA, hA)
	put(t, s1, dataB, hB)
	s1.Close()

	s2, err := Open(Config{Dir: dir, MemoryBudget: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Claim(hA) {
		t.Fatal("claim of an adopted blob failed")
	}
	var missing extent.Hash
	missing[0] = 0xFF
	if s2.Claim(missing) {
		t.Fatal("claim of a never-stored blob succeeded")
	}
	if st := s2.Stats(); st.DeadBlobs != 1 {
		t.Fatalf("dead after claim = %d, want just the unclaimed blob", st.DeadBlobs)
	}
	if freed := s2.Sweep(); freed != 1 {
		t.Fatalf("swept %d, want only the unclaimed blob", freed)
	}
	if got := get(t, s2, hA); !bytes.Equal(got, dataA) {
		t.Fatal("claimed blob unreadable")
	}
	if _, err := s2.Get(hB); err == nil {
		t.Fatal("unclaimed blob survived the sweep")
	}
	// Claim is idempotent and also true for resident blobs.
	if !s2.Claim(hA) {
		t.Fatal("second claim failed")
	}
}

// compressible builds a low-entropy blob (long runs) and its hash.
func compressible(seed, size int) ([]byte, extent.Hash) {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(seed + i/512)
	}
	return data, sha256.Sum256(data)
}

// TestCompressRoundTripAndStats: compressible blobs are stored flate-encoded
// (".z", physical < logical), incompressible blobs stay raw, and both page
// back in byte-identical with the hash check on uncompressed bytes.
func TestCompressRoundTripAndStats(t *testing.T) {
	dir := t.TempDir()
	// Loose layout under test (the ".z" naming); packs off.
	s, err := Open(Config{Dir: dir, MemoryBudget: 16, Compress: true, PackThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	zdata, zh := compressible(3, 32<<10)
	put(t, s, zdata, zh)
	// blob() output (byte(seed*31+i)) cycles every 256 bytes — flate still
	// shrinks it — so build truly incompressible bytes from a hash chain.
	raw := make([]byte, 8<<10)
	sum := sha256.Sum256([]byte("entropy"))
	for i := 0; i < len(raw); i += len(sum) {
		copy(raw[i:], sum[:])
		sum = sha256.Sum256(sum[:])
	}
	rh := sha256.Sum256(raw)
	put(t, s, raw, extent.Hash(rh))

	st := s.Stats()
	if st.DiskLogicalBytes != int64(len(zdata)+len(raw)) {
		t.Fatalf("logical bytes = %d, want %d", st.DiskLogicalBytes, len(zdata)+len(raw))
	}
	if st.DiskBytes >= st.DiskLogicalBytes {
		t.Fatalf("no compression win: %d physical vs %d logical", st.DiskBytes, st.DiskLogicalBytes)
	}
	hx := fmt.Sprintf("%x", zh[:])
	if _, err := os.Stat(filepath.Join(dir, hx[:2], hx[2:]+".z")); err != nil {
		t.Fatalf("compressible blob not stored as .z: %v", err)
	}
	rx := fmt.Sprintf("%x", rh[:])
	if _, err := os.Stat(filepath.Join(dir, rx[:2], rx[2:])); err != nil {
		t.Fatalf("incompressible blob not stored raw: %v", err)
	}
	if got := get(t, s, zh); !bytes.Equal(got, zdata) {
		t.Fatal("compressed blob diverged after page-in")
	}
	if got := get(t, s, extent.Hash(rh)); !bytes.Equal(got, raw) {
		t.Fatal("raw blob diverged after page-in")
	}

	// A corrupted .z file must fail the (uncompressed) hash check or the
	// decoder, never serve bad bytes.
	if err := os.WriteFile(filepath.Join(dir, hx[:2], hx[2:]+".z"), deflate([]byte("junk")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(zh); err == nil {
		t.Fatal("corrupted compressed blob served")
	}
}

// TestCompressAdoptAndMixedMode: a store without Compress reads ".z" blobs an
// earlier store left, and vice versa; sweep removes the right file either way.
func TestCompressAdoptAndMixedMode(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Config{Dir: dir, MemoryBudget: 16, Compress: true, PackThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	zdata, zh := compressible(9, 16<<10)
	put(t, s1, zdata, zh)
	s1.Close()

	// Uncompressed store adopts and serves the .z blob.
	s2, err := Open(Config{Dir: dir, MemoryBudget: 16, PackThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Claim(zh) {
		t.Fatal("claim of adopted .z blob failed")
	}
	if got := get(t, s2, zh); !bytes.Equal(got, zdata) {
		t.Fatal("adopted .z blob diverged")
	}
	// New blobs from this store are raw; both sweep cleanly.
	data, h := blob(77, 4096)
	put(t, s2, data, h)
	s2.Drop(zh)
	s2.Drop(h)
	if freed := s2.Sweep(); freed != 2 {
		t.Fatalf("swept %d files, want 2 (one .z, one raw)", freed)
	}
	if n := diskFiles(t, dir); n != 0 {
		t.Fatalf("%d blob files left after mixed-mode sweep", n)
	}
}

// diskFiles counts files in the two-hex-digit fan-out.
func diskFiles(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	subs, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		if !sub.IsDir() || len(sub.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, sub.Name()))
		if err != nil {
			t.Fatal(err)
		}
		n += len(files)
	}
	return n
}

// TestConcurrentChurn hammers put/get/drop/sweep from many goroutines; run
// under -race this shakes out locking bugs in the LRU and sweep claim logic.
func TestConcurrentChurn(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), MemoryBudget: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Shared blobs (overlapping seeds) are never dropped —
				// chunkdisk's contract leaves liveness tracking to the
				// archive's refcounts, so only private blobs get dropped.
				data, h := blob((w+i)%12, 2048)
				put(t, s, data, h)
				if got := get(t, s, h); !bytes.Equal(got, data) {
					t.Errorf("worker %d: blob diverged", w)
					return
				}
				priv, ph := blob(1000+w*100+i, 1024)
				put(t, s, priv, ph)
				if got := get(t, s, ph); !bytes.Equal(got, priv) {
					t.Errorf("worker %d: private blob diverged", w)
					return
				}
				if i%5 == 4 {
					s.Drop(ph)
				}
				if i%11 == 10 {
					s.Sweep()
				}
			}
		}(w)
	}
	wg.Wait()
}
