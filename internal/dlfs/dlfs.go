// Package dlfs implements the DataLinks File System of §2.3 and §4: a
// virtual-file-system layer interposed between the logical file system and
// the physical file system. It intercepts fs_lookup, fs_open, fs_close,
// fs_remove and fs_rename, coordinating with the DLFM upcall daemon to
// enforce database-managed access control, update transactions, and
// referential integrity, while leaving fs_read/fs_write untouched — the
// design decision behind DataLinks' low overhead (§3.2).
//
// The performance-critical properties of the paper are reproduced exactly:
//
//   - Reads of files NOT under full database control make no upcalls at all:
//     DLFS decides by examining file ownership (§4, "optimization").
//   - Writes to rfd files take the lazy path: the native open fails first
//     (the file was made read-only at link time), and only then does DLFS
//     upcall, let DLFM take the file over, and retry with system
//     credentials (§4.2).
//   - fs_read/fs_write are pure pass-through.
package dlfs

import (
	"context"
	"errors"
	"fmt"

	"datalinks/internal/fs"
	"datalinks/internal/metrics"
	"datalinks/internal/token"
	"datalinks/internal/upcall"
	"datalinks/internal/vfs"
)

// Config configures a DLFS mount.
type Config struct {
	Phys *fs.FS
	// Upcall reaches the DLFM upcall daemon of this file server.
	Upcall upcall.Service
	// DLFMUid is the uid DLFM runs as; ownership by this uid marks a file
	// as being under full database control (or taken over for update).
	DLFMUid fs.UID
	// Strict enables the future-work extension of §4.5: an upcall on every
	// open, closing the link-while-open window of inconsistency at the cost
	// of upcalls on previously free paths.
	Strict  bool
	Metrics *metrics.Registry
}

// DLFS is the interposing file system. It implements vfs.FileSystem.
type DLFS struct {
	cfg Config
	ctr dlfsCounters
}

// dlfsCounters caches the hot-path counters so open/lookup traffic does a
// single atomic add instead of a registry lookup per operation.
type dlfsCounters struct {
	tokenValidated   *metrics.Counter
	tokenRejected    *metrics.Counter
	openReadNative   *metrics.Counter
	openNative       *metrics.Counter
	openNativeStrict *metrics.Counter
	openWriteLazy    *metrics.Counter
	openWriteManaged *metrics.Counter
	openReadManaged  *metrics.Counter
	removeRejected   *metrics.Counter
	renameRejected   *metrics.Counter
}

// New builds a DLFS over a physical file system and an upcall transport.
func New(cfg Config) *DLFS {
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	return &DLFS{
		cfg: cfg,
		ctr: dlfsCounters{
			tokenValidated:   cfg.Metrics.Counter("dlfs.token.validated"),
			tokenRejected:    cfg.Metrics.Counter("dlfs.token.rejected"),
			openReadNative:   cfg.Metrics.Counter("dlfs.open.read.native"),
			openNative:       cfg.Metrics.Counter("dlfs.open.native"),
			openNativeStrict: cfg.Metrics.Counter("dlfs.open.native.strict"),
			openWriteLazy:    cfg.Metrics.Counter("dlfs.open.write.lazy_upcall"),
			openWriteManaged: cfg.Metrics.Counter("dlfs.open.write.managed"),
			openReadManaged:  cfg.Metrics.Counter("dlfs.open.read.managed"),
			removeRejected:   cfg.Metrics.Counter("dlfs.remove.rejected"),
			renameRejected:   cfg.Metrics.Counter("dlfs.rename.rejected"),
		},
	}
}

var (
	_ vfs.FileSystem    = (*DLFS)(nil)
	_ vfs.CtxFileSystem = (*DLFS)(nil)
)

// node is DLFS's vnode: the physical inode plus the private data DLFS keeps
// (the paper's challenge is that *per-file DataLinks state* cannot live
// here — it lives at DLFM — but standard vnode identity can).
type node struct {
	ino  *fs.Inode
	path string // clean path, token stripped
}

// openFile is the per-open private data.
type openFile struct {
	openID  uint64 // DLFM correlation id; 0 for native opens
	managed bool   // true when DLFM approved this open (close must upcall)
	write   bool
	locked  bool // holds the fs_lockctl exclusive lock (rfd writes)
}

// lockOwner names the lockctl owner for a managed write open.
func lockOwner(id uint64) string { return fmt.Sprintf("dlfs-upd-%d", id) }

// mapCode translates a DLFM rejection into a file system error.
func mapCode(resp upcall.Response) error {
	switch resp.Code {
	case upcall.CodePermission, upcall.CodeBadToken:
		return fmt.Errorf("%w: %s", fs.ErrPermission, resp.Err)
	case upcall.CodeBusy:
		return fmt.Errorf("%w: %s", fs.ErrLocked, resp.Err)
	case upcall.CodeIntegrity:
		return fmt.Errorf("%w: %s", fs.ErrPermission, resp.Err)
	case upcall.CodeNotLinked:
		return fmt.Errorf("%w: %s", fs.ErrPermission, resp.Err)
	default:
		return fmt.Errorf("dlfs: upcall rejected: %s", resp.Err)
	}
}

// FsLookup resolves a name, validating any embedded access token with the
// upcall daemon (§4.1). An invalid token fails the lookup.
func (d *DLFS) FsLookup(cred fs.Cred, name string) (vfs.Node, error) {
	return d.FsLookupCtx(context.Background(), cred, name)
}

// FsLookupCtx is FsLookup carrying the request context into the upcall.
func (d *DLFS) FsLookupCtx(ctx context.Context, cred fs.Cred, name string) (vfs.Node, error) {
	path, tok, hasToken := token.Extract(name)
	if hasToken {
		resp, err := upcall.Call(ctx, d.cfg.Upcall, upcall.Request{
			Op:    upcall.OpValidateToken,
			Path:  path,
			Token: tok,
			UID:   int32(cred.UID),
		})
		if err != nil {
			return nil, fmt.Errorf("dlfs: upcall daemon unreachable: %w", err)
		}
		if !resp.OK {
			d.ctr.tokenRejected.Inc()
			return nil, mapCode(resp)
		}
		d.ctr.tokenValidated.Inc()
	}
	ino, err := d.cfg.Phys.Lookup(path)
	if err != nil {
		return nil, err
	}
	return &node{ino: ino, path: path}, nil
}

// FsOpen enforces the control-mode semantics of Table 1 at open time.
func (d *DLFS) FsOpen(cred fs.Cred, vn vfs.Node, mode fs.AccessMode) (vfs.OpenFile, error) {
	return d.FsOpenCtx(context.Background(), cred, vn, mode)
}

// FsOpenCtx is FsOpen carrying the request context into the upcalls.
func (d *DLFS) FsOpenCtx(ctx context.Context, cred fs.Cred, vn vfs.Node, mode fs.AccessMode) (vfs.OpenFile, error) {
	n, ok := vn.(*node)
	if !ok {
		return nil, fs.ErrInvalid
	}
	attr, err := d.cfg.Phys.Getattr(n.ino)
	if err != nil {
		return nil, err
	}
	if attr.Type == fs.TypeDir {
		// Directories are never linked; pass through.
		if err := d.cfg.Phys.OpenCheck(n.ino, cred, mode); err != nil {
			return nil, err
		}
		return &openFile{}, nil
	}
	write := mode&fs.AccessWrite != 0
	dlfmOwned := attr.UID == d.cfg.DLFMUid

	switch {
	case dlfmOwned:
		// Full database control (rdb/rdd) — or an rfd file currently taken
		// over for update. Every open goes through DLFM.
		return d.managedOpen(ctx, cred, n, write)
	case write:
		// Try the native open first (§4.2's lazy write path).
		err := d.cfg.Phys.OpenCheck(n.ino, cred, mode)
		if err == nil {
			return d.nativeOpen(ctx, cred, n, write)
		}
		if !errors.Is(err, fs.ErrPermission) {
			return nil, err
		}
		// Read-only at the FS level: either an rfd/rfb linked file or a
		// genuinely read-only file. Ask DLFM.
		d.ctr.openWriteLazy.Inc()
		of, uerr := d.managedOpen(ctx, cred, n, write)
		if uerr == nil {
			return of, nil
		}
		var nl notLinkedError
		if errors.As(uerr, &nl) {
			// Not managed by the database after all: surface the original
			// permission error unchanged.
			return nil, err
		}
		return nil, uerr
	default:
		// Read of a file not under full control: zero upcalls (unless the
		// strict extension is on).
		if err := d.cfg.Phys.OpenCheck(n.ino, cred, mode); err != nil {
			return nil, err
		}
		d.ctr.openReadNative.Inc()
		return d.nativeOpen(ctx, cred, n, false)
	}
}

// notLinkedError lets managedOpen's callers detect the "file is not linked"
// rejection so the lazy write path can fall back to the native error.
type notLinkedError struct{ msg string }

func (e notLinkedError) Error() string { return e.msg }

// nativeOpen completes an open the physical file system already authorized.
// With the strict extension on, the open is still registered with DLFM so
// link processing can detect open files (§4.5 future work).
func (d *DLFS) nativeOpen(ctx context.Context, cred fs.Cred, n *node, write bool) (vfs.OpenFile, error) {
	if !d.cfg.Strict {
		d.ctr.openNative.Inc()
		return &openFile{write: write}, nil
	}
	resp, err := upcall.Call(ctx, d.cfg.Upcall, upcall.Request{
		Op:     upcall.OpReadOpen,
		Path:   n.path,
		UID:    int32(cred.UID),
		Strict: true,
	})
	if err != nil {
		return nil, fmt.Errorf("dlfs: upcall daemon unreachable: %w", err)
	}
	if !resp.OK {
		return nil, mapCode(resp)
	}
	d.ctr.openNativeStrict.Inc()
	return &openFile{openID: resp.OpenID, managed: true, write: write}, nil
}

// managedOpen runs the upcall-approved open protocol.
func (d *DLFS) managedOpen(ctx context.Context, cred fs.Cred, n *node, write bool) (vfs.OpenFile, error) {
	op := upcall.OpReadOpen
	if write {
		op = upcall.OpWriteOpen
	}
	resp, err := upcall.Call(ctx, d.cfg.Upcall, upcall.Request{
		Op:    op,
		Path:  n.path,
		UID:   int32(cred.UID),
		Write: write,
	})
	if err != nil {
		return nil, fmt.Errorf("dlfs: upcall daemon unreachable: %w", err)
	}
	if !resp.OK {
		if resp.Code == upcall.CodeNotLinked {
			return nil, notLinkedError{msg: resp.Err}
		}
		return nil, mapCode(resp)
	}
	of := &openFile{openID: resp.OpenID, managed: true, write: write}
	// DLFM approved: perform the physical open with system credentials
	// (DLFS is the kernel; the database, not the FS, did the access check).
	sysCred := fs.Cred{UID: fs.Root}
	checkMode := fs.AccessRead
	if write {
		checkMode = fs.ReadWrite
	}
	if resp.TakeOver || write {
		if err := d.cfg.Phys.OpenCheck(n.ino, sysCred, checkMode); err != nil {
			d.abandonOpen(n, of)
			return nil, err
		}
	} else {
		if err := d.cfg.Phys.OpenCheck(n.ino, cred, checkMode); err != nil {
			d.abandonOpen(n, of)
			return nil, err
		}
	}
	if write {
		// Explicit file locking through fs_lockctl for the update window
		// (§4.2). DLFM's serialization makes contention rare, but the lock
		// is the mechanism the paper names for rfd write serialization.
		if err := d.cfg.Phys.Lockctl(n.ino, lockOwner(of.openID), fs.LockExclusive); err != nil {
			d.abandonOpen(n, of)
			return nil, err
		}
		of.locked = true
		d.ctr.openWriteManaged.Inc()
	} else {
		d.ctr.openReadManaged.Inc()
	}
	return of, nil
}

// abandonOpen tells DLFM an approved open never completed.
func (d *DLFS) abandonOpen(n *node, of *openFile) {
	attr, err := d.cfg.Phys.Getattr(n.ino)
	if err != nil {
		return
	}
	_, _ = d.cfg.Upcall.Upcall(upcall.Request{
		Op:     upcall.OpClose,
		Path:   n.path,
		OpenID: of.openID,
		Size:   attr.Size,
		Mtime:  attr.Mtime.UnixNano(),
	})
}

// FsClose ends the open. For managed opens this is the end-transaction
// upcall: DLFM commits the file-update transaction (write opens) or purges
// the Sync read entry (read opens). A failed close means the update rolled
// back, and the application sees the error — exactly §4.2.
func (d *DLFS) FsClose(cred fs.Cred, vn vfs.Node, ofi vfs.OpenFile) error {
	return d.FsCloseCtx(context.Background(), cred, vn, ofi)
}

// FsCloseCtx is FsClose carrying the request context into the end-transaction
// upcall.
func (d *DLFS) FsCloseCtx(ctx context.Context, cred fs.Cred, vn vfs.Node, ofi vfs.OpenFile) error {
	n, ok := vn.(*node)
	if !ok {
		return fs.ErrInvalid
	}
	of, ok := ofi.(*openFile)
	if !ok || !of.managed {
		return nil
	}
	attr, err := d.cfg.Phys.Getattr(n.ino)
	if err != nil {
		return err
	}
	resp, err := upcall.Call(ctx, d.cfg.Upcall, upcall.Request{
		Op:     upcall.OpClose,
		Path:   n.path,
		OpenID: of.openID,
		Size:   attr.Size,
		Mtime:  attr.Mtime.UnixNano(),
	})
	if of.locked {
		_ = d.cfg.Phys.TryLockctl(n.ino, lockOwner(of.openID), fs.LockUnlock)
		of.locked = false
	}
	if err != nil {
		return fmt.Errorf("dlfs: close upcall: %w", err)
	}
	if !resp.OK {
		return mapCode(resp)
	}
	return nil
}

// FsRead passes straight through to the physical file system (§3.2).
func (d *DLFS) FsRead(vn vfs.Node, _ vfs.OpenFile, off int64, p []byte) (int, error) {
	n, ok := vn.(*node)
	if !ok {
		return 0, fs.ErrInvalid
	}
	return d.cfg.Phys.ReadAt(n.ino, off, p)
}

// FsWrite passes straight through to the physical file system (§3.2).
func (d *DLFS) FsWrite(vn vfs.Node, _ vfs.OpenFile, off int64, p []byte) (int, error) {
	n, ok := vn.(*node)
	if !ok {
		return 0, fs.ErrInvalid
	}
	return d.cfg.Phys.WriteAt(n.ino, off, p)
}

// FsRemove rejects unlinking database-linked files (referential integrity,
// §2.3) and otherwise passes through.
func (d *DLFS) FsRemove(cred fs.Cred, name string) error {
	path, _, _ := token.Extract(name)
	resp, err := d.cfg.Upcall.Upcall(upcall.Request{Op: upcall.OpCheckRemove, Path: path, UID: int32(cred.UID)})
	if err != nil {
		return fmt.Errorf("dlfs: upcall daemon unreachable: %w", err)
	}
	if !resp.OK {
		d.ctr.removeRejected.Inc()
		return mapCode(resp)
	}
	return d.cfg.Phys.Remove(path, cred)
}

// FsRename rejects renaming database-linked files and otherwise passes
// through.
func (d *DLFS) FsRename(cred fs.Cred, oldName, newName string) error {
	oldPath, _, _ := token.Extract(oldName)
	newPath, _, _ := token.Extract(newName)
	resp, err := d.cfg.Upcall.Upcall(upcall.Request{
		Op:      upcall.OpCheckRename,
		Path:    oldPath,
		NewPath: newPath,
		UID:     int32(cred.UID),
	})
	if err != nil {
		return fmt.Errorf("dlfs: upcall daemon unreachable: %w", err)
	}
	if !resp.OK {
		d.ctr.renameRejected.Inc()
		return mapCode(resp)
	}
	return d.cfg.Phys.Rename(oldPath, newPath, cred)
}

// FsGetattr stats the node.
func (d *DLFS) FsGetattr(vn vfs.Node) (fs.Attr, error) {
	n, ok := vn.(*node)
	if !ok {
		return fs.Attr{}, fs.ErrInvalid
	}
	return d.cfg.Phys.Getattr(n.ino)
}

// FsCreate makes a new (unlinked) file.
func (d *DLFS) FsCreate(cred fs.Cred, name string, mode fs.FileMode) (vfs.Node, error) {
	path, _, _ := token.Extract(name)
	ino, err := d.cfg.Phys.Create(path, cred, mode)
	if err != nil {
		return nil, err
	}
	return &node{ino: ino, path: path}, nil
}

// FsLockctl passes advisory locking through.
func (d *DLFS) FsLockctl(vn vfs.Node, owner string, op fs.LockOp, block bool) error {
	n, ok := vn.(*node)
	if !ok {
		return fs.ErrInvalid
	}
	if block {
		return d.cfg.Phys.Lockctl(n.ino, owner, op)
	}
	return d.cfg.Phys.TryLockctl(n.ino, owner, op)
}

// FsReaddir lists a directory.
func (d *DLFS) FsReaddir(cred fs.Cred, name string) ([]string, error) {
	return d.cfg.Phys.ReadDir(name)
}

// Metrics exposes DLFS-side counters.
func (d *DLFS) Metrics() *metrics.Registry { return d.cfg.Metrics }
