package dlfs

import (
	"errors"
	"sync"
	"testing"

	"datalinks/internal/fs"
	"datalinks/internal/token"
	"datalinks/internal/upcall"
	"datalinks/internal/vfs"
)

const dlfmUID fs.UID = 777
const user fs.UID = 100

// scriptedDLFM is a minimal upcall service with scripted behaviour so DLFS
// logic is tested in isolation from the real DLFM.
type scriptedDLFM struct {
	mu        sync.Mutex
	calls     []upcall.Request
	linked    map[string]bool // paths considered linked
	writable  map[string]bool // paths where write-open is approved
	readable  map[string]bool // full-control paths where read-open is approved
	failToken bool
	nextOpen  uint64
}

func newScripted() *scriptedDLFM {
	return &scriptedDLFM{
		linked:   make(map[string]bool),
		writable: make(map[string]bool),
		readable: make(map[string]bool),
	}
}

func (s *scriptedDLFM) Upcall(req upcall.Request) (upcall.Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls = append(s.calls, req)
	switch req.Op {
	case upcall.OpValidateToken:
		if s.failToken {
			return upcall.Response{Code: upcall.CodeBadToken, Err: "bad token"}, nil
		}
		return upcall.Response{OK: true}, nil
	case upcall.OpReadOpen:
		if req.Strict && !s.linked[req.Path] {
			s.nextOpen++
			return upcall.Response{OK: true, OpenID: s.nextOpen}, nil
		}
		if s.readable[req.Path] {
			s.nextOpen++
			return upcall.Response{OK: true, OpenID: s.nextOpen, TakeOver: true}, nil
		}
		if !s.linked[req.Path] {
			return upcall.Response{Code: upcall.CodeNotLinked, Err: "not linked"}, nil
		}
		return upcall.Response{Code: upcall.CodePermission, Err: "no read"}, nil
	case upcall.OpWriteOpen:
		if !s.linked[req.Path] {
			return upcall.Response{Code: upcall.CodeNotLinked, Err: "not linked"}, nil
		}
		if s.writable[req.Path] {
			s.nextOpen++
			return upcall.Response{OK: true, OpenID: s.nextOpen, TakeOver: true}, nil
		}
		return upcall.Response{Code: upcall.CodePermission, Err: "writes blocked"}, nil
	case upcall.OpClose:
		return upcall.Response{OK: true}, nil
	case upcall.OpCheckRemove, upcall.OpCheckRename:
		if s.linked[req.Path] || s.linked[req.NewPath] {
			return upcall.Response{Code: upcall.CodeIntegrity, Err: "linked"}, nil
		}
		return upcall.Response{OK: true}, nil
	}
	return upcall.Response{Code: upcall.CodeInternal}, nil
}

func (s *scriptedDLFM) callsFor(op upcall.Op) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.calls {
		if c.Op == op {
			n++
		}
	}
	return n
}

func setup(t *testing.T, strict bool) (*vfs.LFS, *fs.FS, *scriptedDLFM) {
	t.Helper()
	phys := fs.New()
	phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777)
	svc := newScripted()
	mount := New(Config{
		Phys:    phys,
		Upcall:  upcall.NewInProc(svc, 0, nil),
		DLFMUid: dlfmUID,
		Strict:  strict,
	})
	return vfs.NewLFS(mount), phys, svc
}

func seed(t *testing.T, phys *fs.FS, path string, mode fs.FileMode, uid fs.UID) {
	t.Helper()
	if err := phys.WriteFile(path, []byte("data")); err != nil {
		t.Fatal(err)
	}
	ino, _ := phys.Lookup(path)
	phys.Chown(ino, fs.Cred{UID: fs.Root}, uid)
	phys.Chmod(ino, fs.Cred{UID: uid}, mode)
}

func TestReadOfUnmanagedFileMakesNoUpcalls(t *testing.T) {
	lfs, phys, svc := setup(t, false)
	seed(t, phys, "/d/plain", 0o644, user)
	fd, err := lfs.Open(fs.Cred{UID: user}, "/d/plain", fs.AccessRead)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	lfs.Close(fd)
	if len(svc.calls) != 0 {
		t.Fatalf("read path made %d upcalls: %+v", len(svc.calls), svc.calls)
	}
}

func TestTokenValidatedAtLookup(t *testing.T) {
	lfs, phys, svc := setup(t, false)
	seed(t, phys, "/d/f", 0o644, user)
	name := token.Embed("/d/f", "r:123:mac")
	fd, err := lfs.Open(fs.Cred{UID: user}, name, fs.AccessRead)
	if err != nil {
		t.Fatalf("open with token: %v", err)
	}
	lfs.Close(fd)
	if svc.callsFor(upcall.OpValidateToken) != 1 {
		t.Fatal("token not validated at lookup")
	}
	// Invalid token fails the lookup itself.
	svc.failToken = true
	if _, err := lfs.Open(fs.Cred{UID: user}, name, fs.AccessRead); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("bad token open = %v", err)
	}
}

func TestLazyWritePathOnlyUpcallsAfterEACCES(t *testing.T) {
	lfs, phys, svc := setup(t, false)
	// A writable file: native open succeeds, no upcall.
	seed(t, phys, "/d/rw", 0o644, user)
	fd, err := lfs.Open(fs.Cred{UID: user}, "/d/rw", fs.AccessWrite)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	lfs.Close(fd)
	if svc.callsFor(upcall.OpWriteOpen) != 0 {
		t.Fatal("writable file triggered an upcall")
	}
	// A read-only linked rfd file: EACCES -> upcall -> approved -> takeover.
	seed(t, phys, "/d/linked", 0o444, user)
	svc.linked["/d/linked"] = true
	svc.writable["/d/linked"] = true
	fd, err = lfs.Open(fs.Cred{UID: user}, "/d/linked", fs.AccessWrite)
	if err != nil {
		t.Fatalf("rfd write open: %v", err)
	}
	if svc.callsFor(upcall.OpWriteOpen) != 1 {
		t.Fatal("rfd write did not take the lazy upcall path")
	}
	if _, err := lfs.Write(fd, []byte("new")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := lfs.Close(fd); err != nil {
		t.Fatalf("close: %v", err)
	}
	if svc.callsFor(upcall.OpClose) == 0 {
		t.Fatal("managed close skipped the upcall")
	}
}

func TestReadOnlyUnlinkedFileKeepsNativeError(t *testing.T) {
	lfs, phys, svc := setup(t, false)
	seed(t, phys, "/d/ro", 0o444, user) // read-only but NOT linked
	_, err := lfs.Open(fs.Cred{UID: user}, "/d/ro", fs.AccessWrite)
	if !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("write to read-only unlinked = %v", err)
	}
	// DLFM was consulted once (it said not linked), and the original
	// permission error surfaced.
	if svc.callsFor(upcall.OpWriteOpen) != 1 {
		t.Fatalf("upcalls = %d", svc.callsFor(upcall.OpWriteOpen))
	}
}

func TestFullControlOpenGoesThroughDLFM(t *testing.T) {
	lfs, phys, svc := setup(t, false)
	seed(t, phys, "/d/fc", 0o400, dlfmUID) // dlfm-owned: full control
	svc.linked["/d/fc"] = true
	svc.readable["/d/fc"] = true
	fd, err := lfs.Open(fs.Cred{UID: user}, "/d/fc", fs.AccessRead)
	if err != nil {
		t.Fatalf("managed read open: %v", err)
	}
	buf := make([]byte, 4)
	if n, _ := lfs.Read(fd, buf); n != 4 {
		t.Fatalf("read %d bytes", n)
	}
	lfs.Close(fd)
	if svc.callsFor(upcall.OpReadOpen) != 1 || svc.callsFor(upcall.OpClose) != 1 {
		t.Fatalf("upcall counts: open=%d close=%d", svc.callsFor(upcall.OpReadOpen), svc.callsFor(upcall.OpClose))
	}
	// Rejected when DLFM says no.
	svc.readable["/d/fc"] = false
	if _, err := lfs.Open(fs.Cred{UID: user}, "/d/fc", fs.AccessRead); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("denied read = %v", err)
	}
}

func TestRemoveRenameConsultDLFM(t *testing.T) {
	lfs, phys, svc := setup(t, false)
	seed(t, phys, "/d/linked", 0o644, user)
	seed(t, phys, "/d/free", 0o644, user)
	svc.linked["/d/linked"] = true
	if err := lfs.Remove(fs.Cred{UID: user}, "/d/linked"); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("remove linked = %v", err)
	}
	if err := lfs.Remove(fs.Cred{UID: user}, "/d/free"); err != nil {
		t.Fatalf("remove free: %v", err)
	}
	seed(t, phys, "/d/free2", 0o644, user)
	if err := lfs.Rename(fs.Cred{UID: user}, "/d/free2", "/d/linked"); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("rename onto linked = %v", err)
	}
	if err := lfs.Rename(fs.Cred{UID: user}, "/d/free2", "/d/elsewhere"); err != nil {
		t.Fatalf("rename free: %v", err)
	}
}

func TestWriteLockHeldDuringUpdate(t *testing.T) {
	lfs, phys, svc := setup(t, false)
	seed(t, phys, "/d/f", 0o444, user)
	svc.linked["/d/f"] = true
	svc.writable["/d/f"] = true
	fd, err := lfs.Open(fs.Cred{UID: user}, "/d/f", fs.AccessWrite)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	ino, _ := phys.Lookup("/d/f")
	writer, _ := phys.LockState(ino)
	if writer == "" {
		t.Fatal("no fs_lockctl exclusive lock held during the update")
	}
	lfs.Close(fd)
	writer, _ = phys.LockState(ino)
	if writer != "" {
		t.Fatal("lock not released at close")
	}
}

func TestStrictModeUpcallsOnPlainReads(t *testing.T) {
	lfs, phys, svc := setup(t, true)
	seed(t, phys, "/d/plain", 0o644, user)
	fd, err := lfs.Open(fs.Cred{UID: user}, "/d/plain", fs.AccessRead)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	lfs.Close(fd)
	if svc.callsFor(upcall.OpReadOpen) != 1 {
		t.Fatalf("strict read upcalls = %d, want 1", svc.callsFor(upcall.OpReadOpen))
	}
	if svc.callsFor(upcall.OpClose) != 1 {
		t.Fatal("strict open's close not reported")
	}
}

func TestDirectoryOpsPassThrough(t *testing.T) {
	lfs, phys, svc := setup(t, false)
	seed(t, phys, "/d/a", 0o644, user)
	names, err := lfs.Readdir(fs.Cred{UID: user}, "/d")
	if err != nil || len(names) != 1 {
		t.Fatalf("readdir = %v, %v", names, err)
	}
	if len(svc.calls) != 0 {
		t.Fatal("readdir made upcalls")
	}
}

func TestCreateUnlinkedFile(t *testing.T) {
	lfs, phys, svc := setup(t, false)
	fd, err := lfs.Create(fs.Cred{UID: user}, "/d/new.txt", 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := lfs.Write(fd, []byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	lfs.Close(fd)
	data, _ := phys.ReadFile("/d/new.txt")
	if string(data) != "hello" {
		t.Fatalf("content = %q", data)
	}
	_ = svc
}
