// Package catalog is the durable metadata plane of the tiered archive: an
// append-only, checksummed manifest log plus periodic snapshot checkpoints
// that persist every archived version's delta manifest (key, version, state
// id, changed-slot list, chunk hashes, tail hash) alongside the chunkdisk
// blob directory. With it, the chunk directory is self-describing: a
// restarted process replays snapshot+log and can serve the full version
// history from cold storage with zero re-archiving.
//
// On-disk layout (all files live in the chunkdisk root, next to the ab/cdef
// blob fan-out, which only uses two-character subdirectories):
//
//	catalog.snap      last snapshot checkpoint (atomic temp+rename)
//	catalog.snap.tmp  in-flight snapshot (removed on open if stranded)
//	catalog.log       records appended since the snapshot
//	catalog.torn      quarantined torn tail of the log (last crash's evidence)
//
// Record framing is uniform across the log and the snapshot body:
//
//	uint32 payload length | uint32 CRC-32 (IEEE) of payload | payload
//
// and every payload starts with a monotonic sequence number. The snapshot
// header carries the sequence it covers, so a crash between "rename snapshot"
// and "truncate log" is harmless: replay skips log records whose sequence the
// snapshot already includes (and record application is idempotent besides).
//
// Torn tails are expected, not fatal: under the default fsync policy appends
// are not synced record-by-record (matching the blob store, which also
// relies on the OS to flush), so a crash can leave a half-written final
// record. Open recovers the longest valid prefix, quarantines the invalid
// suffix to catalog.torn, and truncates the log so new appends never
// interleave with garbage. Only the records at risk are the ones after the
// last flush — earlier versions are never lost. Config.Fsync tightens the
// window: "always" flushes every append inline, "group" coalesces concurrent
// committers behind shared flushes at the Sync barrier (internal/fsyncer).
//
// The catalog keeps an in-memory shadow of the replayed state (delta-form
// records, so shadow memory is O(changed chunks) per version, the same bound
// as the archive's own metadata). Snapshots serialize the shadow; the archive
// reads it back through Keys/History at open.
//
// A catalog (like the chunkdisk directory it lives in) has a single owner
// process at a time; two stores over one directory corrupt each other.
package catalog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"datalinks/internal/extent"
	"datalinks/internal/fsyncer"
	"datalinks/internal/metrics"
)

// File names within the store directory.
const (
	logName     = "catalog.log"
	snapName    = "catalog.snap"
	snapTmpName = "catalog.snap.tmp"
	tornName    = "catalog.torn"
)

// snapMagic identifies a snapshot file (8 bytes: format name + version).
var snapMagic = [8]byte{'D', 'L', 'C', 'A', 'T', 'S', 'N', '1'}

// DefaultCompactBytes triggers a snapshot checkpoint once the log grows past
// this size (the archive can override via its tier config).
const DefaultCompactBytes = 4 << 20

// Record kinds.
const (
	kindPut      = 1 // a version archived
	kindTruncate = 2 // point-in-time truncate: keep only the first N versions
	kindDrop     = 3 // whole history discarded (unlink)
)

// maxRecordBytes bounds a single record (sanity check while scanning: a
// corrupted length prefix must not allocate gigabytes).
const maxRecordBytes = 64 << 20

// Mod is one changed slot of a delta manifest.
type Mod struct {
	Idx  int32
	Hash extent.Hash
}

// PutRec is the durable manifest of one archived version. Full/Mods slices
// are shared with the archive's in-memory records and must never be mutated
// after append.
type PutRec struct {
	Key            string // server "\x00" path
	Version        int64
	StateID        uint64
	Size           int64
	StoredUnixNano int64
	NChunks        int
	TailLen        int
	TailHash       extent.Hash   // meaningful when TailLen > 0
	IsFull         bool          // checkpoint manifest (Full) vs delta (Mods)
	Full           []extent.Hash // every chunk hash, checkpoint only
	Mods           []Mod         // changed slots, delta only
}

// OpenStats reports what Open found and recovered.
type OpenStats struct {
	SnapshotRecords int   // records loaded from catalog.snap
	LogRecords      int   // records applied from catalog.log
	StaleSkipped    int   // log records already covered by the snapshot
	TornBytes       int64 // invalid log suffix quarantined to catalog.torn
	Keys            int   // distinct histories after replay
	Versions        int   // total versions after replay
}

// history is the shadow state of one key.
type history struct {
	puts []*PutRec
}

// Config configures a catalog.
type Config struct {
	// CompactBytes checkpoints the log once it outgrows this size (<= 0:
	// DefaultCompactBytes).
	CompactBytes int64
	// Fsync selects the append durability policy (none | group | always).
	Fsync fsyncer.Policy
	// FsyncMaxDelay, under the group policy, is the leader's coalescing
	// window before flushing.
	FsyncMaxDelay time.Duration
	// Metrics, if set, mirrors catalog.fsyncs into a registry.
	Metrics *metrics.Registry
}

// Catalog is the durable version-metadata store. Safe for concurrent use.
type Catalog struct {
	dir       string
	compactAt int64

	sync *fsyncer.Syncer

	mu         sync.Mutex
	log        *os.File
	logBytes   int64
	seq        uint64
	files      map[string]*history
	stats      OpenStats
	compactDue bool
	closed     bool
}

// ErrClosed rejects appends after Close.
var ErrClosed = errors.New("catalog: closed")

// Open replays the catalog in dir (snapshot, then log), quarantining any torn
// log tail, and returns it ready for appends.
func Open(dir string, cfg Config) (*Catalog, error) {
	compactAt := cfg.CompactBytes
	if compactAt <= 0 {
		compactAt = DefaultCompactBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	// A crash mid-snapshot strands the temp file; the renamed snapshot (or
	// its absence) is the truth.
	os.Remove(filepath.Join(dir, snapTmpName))

	c := &Catalog{dir: dir, compactAt: compactAt, files: make(map[string]*history)}
	snapSeq, err := c.loadSnapshot()
	if err != nil {
		return nil, err
	}
	c.seq = snapSeq
	if err := c.loadLog(snapSeq); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(c.path(logName), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	if _, err := f.Seek(c.logBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("catalog: %w", err)
	}
	c.log = f
	// The log handle is stable for the catalog's lifetime (compaction
	// truncates it in place), so the flush callback can hold it directly.
	var onSync func()
	if cfg.Metrics != nil {
		ctr := cfg.Metrics.Counter("catalog.fsyncs")
		onSync = ctr.Inc
	}
	c.sync = fsyncer.New(cfg.Fsync, cfg.FsyncMaxDelay, f.Sync, onSync)
	for _, h := range c.files {
		c.stats.Versions += len(h.puts)
	}
	c.stats.Keys = len(c.files)
	return c, nil
}

// Sync is the commit durability barrier: under the group policy it returns
// after a (possibly shared) fdatasync covering every append that completed
// before the call. Call it OUTSIDE locks that appenders need.
func (c *Catalog) Sync() error {
	return c.sync.Barrier()
}

// SyncRound is Sync, additionally reporting the group-commit round that made
// the caller's appends durable (0 under none/always). Traces use it.
func (c *Catalog) SyncRound() (uint64, error) {
	return c.sync.BarrierRound()
}

// Fsyncs reports the physical flushes issued so far.
func (c *Catalog) Fsyncs() int64 {
	return c.sync.Count()
}

func (c *Catalog) path(name string) string { return filepath.Join(c.dir, name) }

// loadSnapshot applies the snapshot checkpoint, returning the sequence it
// covers (0 when there is none). A snapshot is written atomically, so a
// decode failure is real corruption and fails the open.
func (c *Catalog) loadSnapshot() (uint64, error) {
	data, err := os.ReadFile(c.path(snapName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("catalog: %w", err)
	}
	if len(data) < len(snapMagic)+8 || [8]byte(data[:8]) != snapMagic {
		return 0, fmt.Errorf("catalog: snapshot header corrupted")
	}
	seq := binary.LittleEndian.Uint64(data[8:16])
	rest := data[16:]
	for len(rest) > 0 {
		payload, n, ok := nextRecord(rest)
		if !ok {
			return 0, fmt.Errorf("catalog: snapshot body corrupted")
		}
		if err := c.apply(payload); err != nil {
			return 0, fmt.Errorf("catalog: snapshot: %w", err)
		}
		c.stats.SnapshotRecords++
		rest = rest[n:]
	}
	return seq, nil
}

// loadLog applies log records with sequence > snapSeq, recovering the longest
// valid prefix: the first framing/checksum/decode failure ends the scan, the
// invalid suffix is quarantined to catalog.torn, and the log file is
// truncated to the valid prefix.
func (c *Catalog) loadLog(snapSeq uint64) error {
	data, err := os.ReadFile(c.path(logName))
	if errors.Is(err, os.ErrNotExist) {
		c.logBytes = 0
		return nil
	}
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	valid := int64(0)
	rest := data
	for len(rest) > 0 {
		payload, n, ok := nextRecord(rest)
		if !ok {
			break
		}
		seq, perr := c.applySeq(payload, snapSeq)
		if perr != nil {
			// A record that frames and checksums but does not decode is as
			// torn as a bad checksum: quarantine from here.
			break
		}
		if seq > c.seq {
			c.seq = seq
		}
		valid += int64(n)
		rest = rest[n:]
	}
	if torn := int64(len(data)) - valid; torn > 0 {
		if err := os.WriteFile(c.path(tornName), data[valid:], 0o644); err != nil {
			return fmt.Errorf("catalog: quarantining torn tail: %w", err)
		}
		if err := os.Truncate(c.path(logName), valid); err != nil {
			return fmt.Errorf("catalog: truncating torn tail: %w", err)
		}
		c.stats.TornBytes = torn
	}
	c.logBytes = valid
	return nil
}

// applySeq decodes the payload's sequence and applies the record unless the
// snapshot already covers it, returning the sequence.
func (c *Catalog) applySeq(payload []byte, snapSeq uint64) (uint64, error) {
	seq, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, fmt.Errorf("catalog: bad record sequence")
	}
	if seq <= snapSeq {
		// Already in the snapshot: a crash hit between snapshot rename and
		// log truncation.
		c.stats.StaleSkipped++
		return seq, nil
	}
	if err := c.apply(payload); err != nil {
		return 0, err
	}
	c.stats.LogRecords++
	return seq, nil
}

// nextRecord frames one record off buf: payload, total bytes consumed, ok.
func nextRecord(buf []byte) (payload []byte, n int, ok bool) {
	if len(buf) < 8 {
		return nil, 0, false
	}
	plen := binary.LittleEndian.Uint32(buf[0:4])
	sum := binary.LittleEndian.Uint32(buf[4:8])
	if plen == 0 || plen > maxRecordBytes || int64(len(buf)) < 8+int64(plen) {
		return nil, 0, false
	}
	payload = buf[8 : 8+plen]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, false
	}
	return payload, 8 + int(plen), true
}

// apply decodes one payload and updates the shadow. Every payload — snapshot
// body (sequence zero) or log — starts with its sequence varint. Application
// is idempotent: a put whose version is not newer than the key's newest is
// skipped, truncates and drops of absent state are no-ops.
func (c *Catalog) apply(payload []byte) error {
	d := &decoder{buf: payload}
	d.uvarint() // sequence; ordering already handled by the caller
	kind := d.byte()
	key := d.str()
	switch kind {
	case kindPut:
		r := &PutRec{Key: key}
		r.Version = int64(d.uvarint())
		r.StateID = d.uvarint()
		r.Size = d.varint()
		r.StoredUnixNano = d.varint()
		r.NChunks = int(d.uvarint())
		r.TailLen = int(d.uvarint())
		if r.TailLen > 0 {
			r.TailHash = d.hash()
		}
		r.IsFull = d.byte() == 1
		n := int(d.uvarint())
		if d.err == nil && n > maxRecordBytes/len(extent.Hash{}) {
			return fmt.Errorf("catalog: absurd manifest length %d", n)
		}
		if r.IsFull {
			if n > 0 {
				r.Full = make([]extent.Hash, n)
				for i := range r.Full {
					r.Full[i] = d.hash()
				}
			}
		} else if n > 0 {
			r.Mods = make([]Mod, n)
			for i := range r.Mods {
				r.Mods[i].Idx = int32(d.uvarint())
				r.Mods[i].Hash = d.hash()
			}
		}
		if d.err != nil || d.rest() != 0 {
			return fmt.Errorf("catalog: put record corrupted")
		}
		h := c.files[key]
		if h == nil {
			h = &history{}
			c.files[key] = h
		}
		if n := len(h.puts); n > 0 && h.puts[n-1].Version >= r.Version {
			return nil // replayed duplicate
		}
		h.puts = append(h.puts, r)
	case kindTruncate:
		keep := int(d.uvarint())
		if d.err != nil || d.rest() != 0 {
			return fmt.Errorf("catalog: truncate record corrupted")
		}
		c.trimLocked(key, keep)
	case kindDrop:
		if d.err != nil || d.rest() != 0 {
			return fmt.Errorf("catalog: drop record corrupted")
		}
		delete(c.files, key)
	default:
		return fmt.Errorf("catalog: unknown record kind %d", kind)
	}
	return d.err
}

// Stats reports what Open recovered.
func (c *Catalog) Stats() OpenStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// LogSize reports the current log length in bytes (tests, compaction
// diagnostics).
func (c *Catalog) LogSize() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.logBytes
}

// Keys lists every key with at least one version, sorted.
func (c *Catalog) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.files))
	for k := range c.files {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// History returns the key's versions in order. The returned records are the
// shadow's own (shared with future snapshots): callers must not mutate them,
// and the slice is a copy so later appends/trims don't race the caller.
func (c *Catalog) History(key string) []*PutRec {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.files[key]
	if h == nil {
		return nil
	}
	return append([]*PutRec(nil), h.puts...)
}

// AppendPut logs one archived version and updates the shadow. The record's
// slices are retained (not copied) — the caller must treat them as frozen.
func (c *Catalog) AppendPut(r *PutRec) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.seq++
	payload := encodePut(c.seq, r)
	if err := c.appendLocked(payload); err != nil {
		c.seq--
		return err
	}
	h := c.files[r.Key]
	if h == nil {
		h = &history{}
		c.files[r.Key] = h
	}
	h.puts = append(h.puts, r)
	c.markCompactLocked()
	return nil
}

// AppendTruncate logs a point-in-time truncation: only the first keep
// versions of key survive.
func (c *Catalog) AppendTruncate(key string, keep int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.seq++
	payload := encodeKeyRecord(kindTruncate, c.seq, key, uint64(keep), true)
	if err := c.appendLocked(payload); err != nil {
		c.seq--
		return err
	}
	c.trimLocked(key, keep)
	c.markCompactLocked()
	return nil
}

// AppendDrop logs the discard of a key's whole history.
func (c *Catalog) AppendDrop(key string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.seq++
	payload := encodeKeyRecord(kindDrop, c.seq, key, 0, false)
	if err := c.appendLocked(payload); err != nil {
		c.seq--
		return err
	}
	delete(c.files, key)
	c.markCompactLocked()
	return nil
}

// Trim cuts a key's shadow history to its first keep versions WITHOUT logging
// a record — the archive's replay uses it to discard versions whose blobs are
// missing from the chunk store, then persists the repaired state via Compact.
func (c *Catalog) Trim(key string, keep int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trimLocked(key, keep)
}

// trimLocked cuts a key's shadow history to its first keep versions.
func (c *Catalog) trimLocked(key string, keep int) {
	if h := c.files[key]; h != nil && keep < len(h.puts) {
		h.puts = h.puts[:keep]
		if keep == 0 {
			delete(c.files, key)
		}
	}
}

// appendLocked frames and writes one payload to the log. A partial write is
// rewound (truncate + re-seek) so the next append never lands after garbage;
// if even the rewind fails, replay's torn-tail quarantine covers it. Under
// the always policy the record is flushed before the append returns.
func (c *Catalog) appendLocked(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf := append(hdr[:], payload...)
	if _, err := c.log.Write(buf); err != nil {
		_ = c.log.Truncate(c.logBytes)
		_, _ = c.log.Seek(c.logBytes, io.SeekStart)
		return fmt.Errorf("catalog: %w", err)
	}
	c.logBytes += int64(len(buf))
	if err := c.sync.AfterWrite(); err != nil {
		return fmt.Errorf("catalog: fsync: %w", err)
	}
	return nil
}

// markCompactLocked flags the log as due for a checkpoint once it outgrows
// the threshold. The append itself never fails on compaction grounds — the
// record is already durable in the log at this point, so a snapshot problem
// must not make the caller unwind state the catalog keeps. The actual
// checkpoint runs in CompactIfDue, which the archive calls OUTSIDE its entry
// shard locks so a large snapshot write never stalls reads of the shard.
func (c *Catalog) markCompactLocked() {
	if c.logBytes > c.compactAt {
		c.compactDue = true
	}
}

// CompactIfDue checkpoints if an append pushed the log past the threshold.
// Best-effort by design: on failure the log simply keeps growing and the next
// append re-arms the flag (the durable state stays consistent — the snapshot
// is only renamed into place when complete, and the log is only truncated
// after that).
func (c *Catalog) CompactIfDue() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || !c.compactDue {
		return nil
	}
	c.compactDue = false
	if err := c.compactLocked(); err != nil {
		c.compactDue = true
		return err
	}
	return nil
}

// Compact writes a snapshot of the shadow and truncates the log. The archive
// calls it after replay (so the next open starts from a clean checkpoint) and
// it runs automatically when the log outgrows the compaction threshold.
func (c *Catalog) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return c.compactLocked()
}

func (c *Catalog) compactLocked() error {
	var buf []byte
	var hdr [16]byte
	copy(hdr[:8], snapMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], c.seq)
	buf = append(buf, hdr[:]...)
	keys := make([]string, 0, len(c.files))
	for k := range c.files {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var frame [8]byte
	for _, k := range keys {
		for _, r := range c.files[k].puts {
			payload := encodePut(0, r) // snapshot records carry sequence 0
			binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
			buf = append(buf, frame[:]...)
			buf = append(buf, payload...)
		}
	}
	tmp := c.path(snapTmpName)
	if err := c.writeSnapFile(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, c.path(snapName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("catalog: %w", err)
	}
	if c.sync.Policy() != fsyncer.PolicyNone {
		// Persist the rename itself before truncating the log it replaces —
		// POSIX does not make a rename durable without a directory fsync.
		if err := syncDir(c.dir); err != nil {
			return fmt.Errorf("catalog: %w", err)
		}
	}
	// The snapshot covers every sequence up to c.seq; the log restarts empty.
	if err := c.log.Truncate(0); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if _, err := c.log.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	c.logBytes = 0
	return nil
}

// writeSnapFile persists the snapshot bytes, fdatasyncing them first under
// policies that sync — the snapshot is about to replace the log's contents,
// so it must not be more volatile than what it replaces.
func (c *Catalog) writeSnapFile(tmp string, buf []byte) error {
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("catalog: %w", err)
	}
	if c.sync.Policy() != fsyncer.PolicyNone {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("catalog: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("catalog: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a rename within it survives a power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	d.Close()
	return serr
}

// Close flushes nothing (appends are unbuffered) and closes the log handle.
// Further appends fail with ErrClosed.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.log.Close()
}

// --- encoding ---

func encodePut(seq uint64, r *PutRec) []byte {
	buf := make([]byte, 0, 64+len(r.Key)+32*(len(r.Full)+len(r.Mods)))
	buf = binary.AppendUvarint(buf, seq)
	buf = append(buf, kindPut)
	buf = binary.AppendUvarint(buf, uint64(len(r.Key)))
	buf = append(buf, r.Key...)
	buf = binary.AppendUvarint(buf, uint64(r.Version))
	buf = binary.AppendUvarint(buf, r.StateID)
	buf = binary.AppendVarint(buf, r.Size)
	buf = binary.AppendVarint(buf, r.StoredUnixNano)
	buf = binary.AppendUvarint(buf, uint64(r.NChunks))
	buf = binary.AppendUvarint(buf, uint64(r.TailLen))
	if r.TailLen > 0 {
		buf = append(buf, r.TailHash[:]...)
	}
	if r.IsFull {
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(r.Full)))
		for i := range r.Full {
			buf = append(buf, r.Full[i][:]...)
		}
	} else {
		buf = append(buf, 0)
		buf = binary.AppendUvarint(buf, uint64(len(r.Mods)))
		for i := range r.Mods {
			buf = binary.AppendUvarint(buf, uint64(r.Mods[i].Idx))
			buf = append(buf, r.Mods[i].Hash[:]...)
		}
	}
	return buf
}

func encodeKeyRecord(kind byte, seq uint64, key string, arg uint64, hasArg bool) []byte {
	buf := make([]byte, 0, 24+len(key))
	buf = binary.AppendUvarint(buf, seq)
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	if hasArg {
		buf = binary.AppendUvarint(buf, arg)
	}
	return buf
}

// decoder reads the primitives of a record payload, latching the first error.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("catalog: record truncated")
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.fail()
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) hash() extent.Hash {
	var h extent.Hash
	if d.err != nil {
		return h
	}
	if len(d.buf) < len(h) {
		d.fail()
		return h
	}
	copy(h[:], d.buf)
	d.buf = d.buf[len(h):]
	return h
}

// rest reports unconsumed payload bytes (a clean record ends at zero).
func (d *decoder) rest() int { return len(d.buf) }
