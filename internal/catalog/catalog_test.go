package catalog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"datalinks/internal/extent"
	"datalinks/internal/fsyncer"
)

func hashOf(b byte) extent.Hash {
	var h extent.Hash
	for i := range h {
		h[i] = b
	}
	return h
}

// putRec builds a small distinguishable record.
func putRec(key string, v int64, full bool) *PutRec {
	r := &PutRec{
		Key:            key,
		Version:        v,
		StateID:        uint64(100 + v),
		Size:           int64(1000 * (v + 1)),
		StoredUnixNano: 1_700_000_000_000_000_000 + v,
		NChunks:        2,
		TailLen:        7,
		TailHash:       hashOf(byte(200 + v)),
		IsFull:         full,
	}
	if full {
		r.Full = []extent.Hash{hashOf(byte(v)), hashOf(byte(v + 1))}
	} else {
		r.Mods = []Mod{{Idx: 1, Hash: hashOf(byte(v + 1))}}
	}
	return r
}

func mustOpen(t *testing.T, dir string) *Catalog {
	t.Helper()
	c, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sameRec(a, b *PutRec) bool {
	if a.Key != b.Key || a.Version != b.Version || a.StateID != b.StateID ||
		a.Size != b.Size || a.StoredUnixNano != b.StoredUnixNano ||
		a.NChunks != b.NChunks || a.TailLen != b.TailLen || a.TailHash != b.TailHash ||
		a.IsFull != b.IsFull || len(a.Full) != len(b.Full) || len(a.Mods) != len(b.Mods) {
		return false
	}
	for i := range a.Full {
		if a.Full[i] != b.Full[i] {
			return false
		}
	}
	for i := range a.Mods {
		if a.Mods[i] != b.Mods[i] {
			return false
		}
	}
	return true
}

// TestRoundtrip: puts, a truncate and a drop survive close/reopen from the
// log alone, from a snapshot alone, and from snapshot+log.
func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir)
	keys := []string{"fs1\x00/a", "fs1\x00/b", "fs1\x00/c"}
	for _, k := range keys {
		for v := int64(0); v < 5; v++ {
			if err := c.AppendPut(putRec(k, v, v == 0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.AppendTruncate(keys[1], 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendDrop(keys[2]); err != nil {
		t.Fatal(err)
	}
	check := func(c *Catalog, phase string) {
		t.Helper()
		got := c.Keys()
		if len(got) != 2 || got[0] != keys[0] || got[1] != keys[1] {
			t.Fatalf("%s: keys = %v", phase, got)
		}
		if h := c.History(keys[0]); len(h) != 5 {
			t.Fatalf("%s: %s has %d versions, want 5", phase, keys[0], len(h))
		} else {
			for v := int64(0); v < 5; v++ {
				if !sameRec(h[v], putRec(keys[0], v, v == 0)) {
					t.Fatalf("%s: version %d diverged: %+v", phase, v, h[v])
				}
			}
		}
		if h := c.History(keys[1]); len(h) != 2 {
			t.Fatalf("%s: truncated key has %d versions, want 2", phase, len(h))
		}
	}
	check(c, "in-memory")
	c.Close()

	// Reopen from the log alone (no snapshot was written).
	c2 := mustOpen(t, dir)
	if st := c2.Stats(); st.SnapshotRecords != 0 || st.LogRecords == 0 || st.TornBytes != 0 {
		t.Fatalf("log-only open stats: %+v", st)
	}
	check(c2, "log replay")

	// Compact and reopen from the snapshot alone.
	if err := c2.Compact(); err != nil {
		t.Fatal(err)
	}
	if c2.LogSize() != 0 {
		t.Fatalf("log not truncated by compaction: %d bytes", c2.LogSize())
	}
	c2.Close()
	c3 := mustOpen(t, dir)
	if st := c3.Stats(); st.SnapshotRecords == 0 || st.LogRecords != 0 {
		t.Fatalf("snapshot-only open stats: %+v", st)
	}
	check(c3, "snapshot replay")

	// Append past the snapshot and reopen from snapshot+log.
	if err := c3.AppendPut(putRec(keys[0], 5, false)); err != nil {
		t.Fatal(err)
	}
	c3.Close()
	c4 := mustOpen(t, dir)
	defer c4.Close()
	if h := c4.History(keys[0]); len(h) != 6 {
		t.Fatalf("snapshot+log: %d versions, want 6", len(h))
	}
	check4 := c4.Stats()
	if check4.SnapshotRecords == 0 || check4.LogRecords != 1 {
		t.Fatalf("snapshot+log open stats: %+v", check4)
	}
}

// TestTornTailRecoveredAtEveryByteBoundary truncates the log at every byte
// boundary of its final record: open must recover the longest valid prefix
// (all earlier versions intact), quarantine the torn suffix, and leave the
// log appendable.
func TestTornTailRecoveredAtEveryByteBoundary(t *testing.T) {
	master := t.TempDir()
	c := mustOpen(t, master)
	k := "fs1\x00/f"
	sizes := []int64{}
	for v := int64(0); v < 4; v++ {
		if err := c.AppendPut(putRec(k, v, v == 0)); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, c.LogSize())
	}
	c.Close()
	logBytes, err := os.ReadFile(filepath.Join(master, logName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(logBytes)) != sizes[3] {
		t.Fatalf("log is %d bytes, expected %d", len(logBytes), sizes[3])
	}
	lastStart := sizes[2]

	for cut := lastStart; cut <= sizes[3]; cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), logBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cc, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		wantVers := 3
		if cut == sizes[3] {
			wantVers = 4 // clean cut after the full record
		}
		h := cc.History(k)
		if len(h) != wantVers {
			t.Fatalf("cut %d: recovered %d versions, want %d", cut, len(h), wantVers)
		}
		for v := 0; v < wantVers; v++ {
			if !sameRec(h[v], putRec(k, int64(v), v == 0)) {
				t.Fatalf("cut %d: version %d corrupted after torn-tail recovery", cut, v)
			}
		}
		wantTorn := cut - lastStart
		if cut == sizes[3] {
			wantTorn = 0 // clean cut: the whole record survived
		}
		if st := cc.Stats(); st.TornBytes != wantTorn {
			t.Fatalf("cut %d: torn bytes = %d, want %d", cut, st.TornBytes, wantTorn)
		}
		if wantTorn > 0 {
			torn, err := os.ReadFile(filepath.Join(dir, tornName))
			if err != nil || !bytes.Equal(torn, logBytes[lastStart:cut]) {
				t.Fatalf("cut %d: quarantined tail wrong (%v, %d bytes)", cut, err, len(torn))
			}
		}
		// The truncated log must accept appends and replay them cleanly.
		if err := cc.AppendPut(putRec(k, 9, false)); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		cc.Close()
		cc2, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("cut %d: second open: %v", cut, err)
		}
		if h := cc2.History(k); len(h) != wantVers+1 || h[len(h)-1].Version != 9 {
			t.Fatalf("cut %d: post-recovery append lost (%d versions)", cut, len(h))
		}
		cc2.Close()
	}
}

// TestCrashBetweenSnapshotRenameAndLogTruncate: if the process dies after the
// snapshot is renamed into place but before the log is truncated, replay must
// not double-apply the log records the snapshot already covers.
func TestCrashBetweenSnapshotRenameAndLogTruncate(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir)
	k := "fs1\x00/f"
	for v := int64(0); v < 3; v++ {
		if err := c.AppendPut(putRec(k, v, v == 0)); err != nil {
			t.Fatal(err)
		}
	}
	preCompact, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AppendTruncate(k, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Simulate the un-truncated log surviving next to the new snapshot.
	if err := os.WriteFile(filepath.Join(dir, logName), preCompact, 0o644); err != nil {
		t.Fatal(err)
	}
	c2 := mustOpen(t, dir)
	defer c2.Close()
	st := c2.Stats()
	if st.StaleSkipped != 3 {
		t.Fatalf("stale log records skipped = %d, want 3", st.StaleSkipped)
	}
	// The truncate (covered by the snapshot) must hold: 2 versions, not 3.
	if h := c2.History(k); len(h) != 2 {
		t.Fatalf("stale log resurrected versions: %d, want 2", len(h))
	}
}

// TestAutoCompaction: appends past the threshold arm the checkpoint flag,
// CompactIfDue (which the archive calls outside its shard locks) runs it,
// and nothing is lost across the checkpoint.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Config{CompactBytes: 256}) // tiny threshold: compact every few records
	if err != nil {
		t.Fatal(err)
	}
	k := "fs1\x00/f"
	for v := int64(0); v < 50; v++ {
		if err := c.AppendPut(putRec(k, v, v == 0)); err != nil {
			t.Fatal(err)
		}
		if err := c.CompactIfDue(); err != nil {
			t.Fatal(err)
		}
	}
	if c.LogSize() > 4*256 {
		t.Fatalf("auto-compaction never ran: log is %d bytes", c.LogSize())
	}
	if _, err := os.Stat(filepath.Join(dir, snapName)); err != nil {
		t.Fatalf("no snapshot after auto-compaction: %v", err)
	}
	c.Close()
	c2 := mustOpen(t, dir)
	defer c2.Close()
	if h := c2.History(k); len(h) != 50 {
		t.Fatalf("replay after auto-compaction: %d versions, want 50", len(h))
	}
}

// TestTrimIsPersistedByCompact: a replay-time Trim (missing-blob repair) is
// invisible to the log but survives via the following Compact.
func TestTrimIsPersistedByCompact(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir)
	k := "fs1\x00/f"
	for v := int64(0); v < 4; v++ {
		if err := c.AppendPut(putRec(k, v, v == 0)); err != nil {
			t.Fatal(err)
		}
	}
	c.Trim(k, 2)
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c2 := mustOpen(t, dir)
	defer c2.Close()
	if h := c2.History(k); len(h) != 2 {
		t.Fatalf("trim lost: %d versions, want 2", len(h))
	}
}

// TestClosedCatalogRejectsAppends: appends after Close fail loudly instead of
// writing to a closed handle.
func TestClosedCatalogRejectsAppends(t *testing.T) {
	c := mustOpen(t, t.TempDir())
	c.Close()
	if err := c.AppendPut(putRec("fs1\x00/f", 0, true)); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := c.AppendDrop("fs1\x00/f"); err == nil {
		t.Fatal("drop after Close succeeded")
	}
}

// TestLargeManifestRoundtrip: a checkpoint record with a thousand chunk
// hashes (a ~64 MiB file) survives the frame/CRC path intact.
func TestLargeManifestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir)
	k := "fs1\x00/big"
	r := &PutRec{Key: k, Version: 0, NChunks: 1024, IsFull: true}
	for i := 0; i < 1024; i++ {
		r.Full = append(r.Full, hashOf(byte(i%251)))
	}
	if err := c.AppendPut(r); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c2 := mustOpen(t, dir)
	defer c2.Close()
	h := c2.History(k)
	if len(h) != 1 || len(h[0].Full) != 1024 {
		t.Fatalf("large manifest lost: %+v", fmt.Sprintf("%d recs", len(h)))
	}
	for i, hh := range h[0].Full {
		if hh != hashOf(byte(i%251)) {
			t.Fatalf("hash %d corrupted", i)
		}
	}
}

// TestFsyncPolicies: always flushes per append; group flushes only at the
// Sync barrier; none never flushes. The durable contents are identical.
func TestFsyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		policy     fsyncer.Policy
		wantAppend int64 // flushes after 3 appends
		wantSync   int64 // flushes after 3 appends + one Sync
	}{
		{fsyncer.PolicyNone, 0, 0},
		{fsyncer.PolicyAlways, 3, 3},
		{fsyncer.PolicyGroup, 0, 1},
	} {
		t.Run(tc.policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			c, err := Open(dir, Config{Fsync: tc.policy})
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < 3; v++ {
				if err := c.AppendPut(&PutRec{Key: "fs1\x00/f", Version: int64(v), IsFull: true}); err != nil {
					t.Fatal(err)
				}
			}
			if got := c.Fsyncs(); got != tc.wantAppend {
				t.Fatalf("after appends: %d fsyncs, want %d", got, tc.wantAppend)
			}
			if err := c.Sync(); err != nil {
				t.Fatal(err)
			}
			if got := c.Fsyncs(); got != tc.wantSync {
				t.Fatalf("after barrier: %d fsyncs, want %d", got, tc.wantSync)
			}
			c.Close()
			c2, err := Open(dir, Config{})
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			if got := len(c2.History("fs1\x00/f")); got != 3 {
				t.Fatalf("replayed %d versions, want 3", got)
			}
		})
	}
}
