// Package datalinks is a from-scratch reproduction of the system described
// in "Database Managed External File Update" (Mittal & Hsiao, ICDE 2001):
// IBM's DataLinks technology extended with database-managed in-place update
// of external files.
//
// A System bundles a host relational database (with the DATALINK column
// type), the DataLinks engine, and one or more file servers, each running a
// DataLinks File Manager (DLFM) over a physical file system with a DataLinks
// File System (DLFS) interposed. Files in a file system are put under
// database control by inserting their URL into a DATALINK column ("linking")
// and released by deleting it ("unlinking"); both run as sub-transactions of
// the SQL transaction.
//
// Control modes (Table 1 of the paper, plus the two update modes the paper
// contributes):
//
//	nff  reference only, file unmanaged
//	rff  referential integrity (no remove/rename of the linked file)
//	rfb  + writes blocked
//	rdb  + reads require a database-issued token
//	rfd  reads free, writes database-managed (in-place update transactions)
//	rdd  reads token-gated AND writes database-managed
//
// In rfd/rdd modes an application updates a file in place through the
// ordinary file API: it selects DLURLCOMPLETEWRITE(col) to get a URL with an
// embedded write token, opens it, writes, and closes. Open is begin
// transaction, close is commit: the file's size and modification time are
// written back to the database in the same transaction, a new version is
// archived, and an abort (or crash) restores the last committed version.
//
// Quick start:
//
//	sys, _ := datalinks.Open(datalinks.Config{Servers: []datalinks.ServerConfig{{Name: "fs1"}}})
//	defer sys.Close()
//	fsrv, _ := sys.FileServer("fs1")
//	fsrv.SeedFile("/pages/index.html", []byte("<html>v1</html>"), 100)
//	sys.Exec(`CREATE TABLE pages (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES, doc_size INT)`)
//	sys.Exec(`INSERT INTO pages VALUES (1, DLVALUE('dlfs://fs1/pages/index.html'), NULL)`)
//	url, _ := sys.QueryString(`SELECT DLURLCOMPLETEWRITE(doc) FROM pages WHERE id = 1`)
//	f, _ := sys.Session(100).OpenWrite(url)
//	f.WriteAll([]byte("<html>v2</html>"))
//	f.Close() // commit: metadata updated, version archived
package datalinks

import (
	"fmt"
	"io"
	"time"

	"datalinks/internal/core"
	"datalinks/internal/datalink"
	"datalinks/internal/dlfm"
	"datalinks/internal/fs"
	"datalinks/internal/sqlmini"
	"datalinks/internal/upcall"
)

// ServerConfig configures one file server of a System.
type ServerConfig struct {
	// Name is the file server name used in DATALINK URLs (dlfs://name/...).
	Name string
	// UpcallLatency simulates the DLFS-to-DLFM IPC cost per upcall.
	UpcallLatency time.Duration
	// UpcallWidth bounds concurrent DLFS-to-DLFM upcalls on this server
	// (0 = unbounded), modelling a finite IPC channel.
	UpcallWidth int
	// ArchiveLatency simulates the archive device per operation.
	ArchiveLatency time.Duration
	// Strict enables the strict-link-check extension: an upcall on every
	// open, closing the link-while-open window at a per-open cost.
	Strict bool
	// OpenWait bounds how long opens wait for conflicting opens/archives.
	OpenWait time.Duration
	// TCPUpcalls runs the DLFS↔DLFM channel over a real TCP loopback
	// connection, matching the kernel/daemon process split of the paper.
	TCPUpcalls bool
	// UpcallNet tunes the TCP upcall plane — client retry/backoff/deadlines
	// and circuit breaker, server backpressure limits and drain, optional
	// fault injection (nil: production defaults).
	UpcallNet *upcall.NetConfig
	// ArchiveDir enables the durable archive tier: committed versions'
	// chunks persist to this directory and only a bounded LRU stays in
	// memory. Empty keeps the archive memory-only.
	ArchiveDir string
	// ArchiveMemoryBudget bounds the archive's in-memory hot-chunk cache in
	// bytes (<= 0: default). Only meaningful with ArchiveDir set.
	ArchiveMemoryBudget int64
	// ArchiveGCInterval runs the background sweeper that unlinks
	// unreferenced on-disk chunks (0: manual GC only).
	ArchiveGCInterval time.Duration
	// ArchiveCheckpointEvery bounds the archive's delta chains: a full
	// manifest at least every this many versions (<= 0: default of 16).
	ArchiveCheckpointEvery int
	// ArchiveCompress flate-compresses spilled archive chunks when that
	// shrinks them (hashes still verify the uncompressed bytes). Only
	// meaningful with ArchiveDir set.
	ArchiveCompress bool
	// ArchiveFsync selects the archive tier's durability policy: "" or
	// "none" (rely on the OS flushing — fastest, a power loss can lose the
	// newest commits' archive copies), "group" (commits are acknowledged
	// only after an fdatasync, but concurrent committers share flushes —
	// group commit), or "always" (every append flushes inline). Only
	// meaningful with ArchiveDir set.
	ArchiveFsync string
	// ArchiveFsyncMaxDelay, under "group", lets the group-commit leader wait
	// this long before flushing so more commits coalesce into one flush.
	ArchiveFsyncMaxDelay time.Duration
	// ArchivePackThreshold batches archive blobs at or below this size into
	// packfiles — many small commits become one sequential append instead of
	// one file each. 0 uses the default (one 64 KiB chunk, covering tails
	// and single-chunk deltas); negative disables packing.
	ArchivePackThreshold int64
	// QuarantineTTL expires quarantined in-flight versions after this age;
	// QuarantineGCInterval runs the background quarantine sweeper.
	QuarantineTTL        time.Duration
	QuarantineGCInterval time.Duration
	// RepoDir enables the durable repository plane: the file server's
	// metadata database logs to CRC-framed WAL segments under this real
	// directory and periodically snapshots itself to repo.snap, so a fresh
	// Open over the same directory (plus ArchiveDir) cold-starts the server
	// after a whole-process kill. Empty keeps the repository in memory.
	RepoDir string
	// RepoFsync selects the repository WAL durability policy: "" or "none"
	// (rely on the OS page cache), "group" (coalesced fdatasyncs), or
	// "always" (every flush syncs inline). Only meaningful with RepoDir set.
	RepoFsync string
	// RepoFsyncMaxDelay, under "group", is the group-commit leader's
	// coalescing window before it flushes.
	RepoFsyncMaxDelay time.Duration
	// RepoCheckpointBytes takes a repository checkpoint after roughly this
	// many logged bytes (<= 0: 1 MiB).
	RepoCheckpointBytes int64
	// Trace enables request-scoped tracing: every top-level operation (open,
	// read, write, commit/close, link/unlink) records a span tree into a
	// bounded per-server ring, stitched across the upcall wire under
	// TCPUpcalls.
	Trace bool
	// TraceCapacity bounds the ring of retained completed traces (<= 0: 512).
	TraceCapacity int
	// SlowOpThreshold emits any traced operation slower than this as a
	// one-line JSON slow_op event (span tree included) to SlowOpLog. Setting
	// it implies tracing even when Trace is false.
	SlowOpThreshold time.Duration
	// SlowOpLog receives slow_op events (nil discards them).
	SlowOpLog io.Writer
}

// Config configures a System.
type Config struct {
	Servers []ServerConfig
	// Clock injects a time source (tests); nil means time.Now.
	Clock func() time.Time
	// TokenKey is the shared secret between engine and DLFMs.
	TokenKey []byte
	// TokenTTL is the default access-token lifetime.
	TokenTTL time.Duration
	// LockTimeout bounds database lock waits (deadlock resolution).
	LockTimeout time.Duration
}

// System is a running DataLinks deployment.
type System struct {
	core *core.System
}

// toCoreServer converts a public server config to the core layer's.
func toCoreServer(s ServerConfig) core.ServerConfig {
	return core.ServerConfig{
		Name:                   s.Name,
		UpcallLatency:          s.UpcallLatency,
		UpcallWidth:            s.UpcallWidth,
		ArchiveLatency:         s.ArchiveLatency,
		Strict:                 s.Strict,
		OpenWait:               s.OpenWait,
		TCPUpcalls:             s.TCPUpcalls,
		UpcallNet:              s.UpcallNet,
		ArchiveDir:             s.ArchiveDir,
		ArchiveMemoryBudget:    s.ArchiveMemoryBudget,
		ArchiveGCInterval:      s.ArchiveGCInterval,
		ArchiveCheckpointEvery: s.ArchiveCheckpointEvery,
		ArchiveCompress:        s.ArchiveCompress,
		ArchiveFsync:           s.ArchiveFsync,
		ArchiveFsyncMaxDelay:   s.ArchiveFsyncMaxDelay,
		ArchivePackThreshold:   s.ArchivePackThreshold,
		QuarantineTTL:          s.QuarantineTTL,
		QuarantineGCInterval:   s.QuarantineGCInterval,
		RepoDir:                s.RepoDir,
		RepoFsync:              s.RepoFsync,
		RepoFsyncMaxDelay:      s.RepoFsyncMaxDelay,
		RepoCheckpointBytes:    s.RepoCheckpointBytes,
		Trace:                  s.Trace,
		TraceCapacity:          s.TraceCapacity,
		SlowOpThreshold:        s.SlowOpThreshold,
		SlowOpLog:              s.SlowOpLog,
	}
}

// Open builds a System.
func Open(cfg Config) (*System, error) {
	servers := make([]core.ServerConfig, len(cfg.Servers))
	for i, s := range cfg.Servers {
		servers[i] = toCoreServer(s)
	}
	c, err := core.NewSystem(core.Config{
		Servers:     servers,
		Clock:       cfg.Clock,
		TokenKey:    cfg.TokenKey,
		TokenTTL:    cfg.TokenTTL,
		LockTimeout: cfg.LockTimeout,
	})
	if err != nil {
		return nil, err
	}
	return &System{core: c}, nil
}

// Close shuts the system down, draining background archive jobs.
func (s *System) Close() { s.core.Close() }

// Internal exposes the underlying core system for advanced use (experiment
// harnesses, admin tools). The core API is internal and may change.
func (s *System) Internal() *core.System { return s.core }

// toValue converts a Go value to a SQL value.
func toValue(arg any) (sqlmini.Value, error) {
	switch v := arg.(type) {
	case nil:
		return sqlmini.Null(), nil
	case int:
		return sqlmini.Int(int64(v)), nil
	case int32:
		return sqlmini.Int(int64(v)), nil
	case int64:
		return sqlmini.Int(v), nil
	case float64:
		return sqlmini.Float(v), nil
	case string:
		return sqlmini.Str(v), nil
	case bool:
		return sqlmini.Bool(v), nil
	case time.Time:
		return sqlmini.Time(v), nil
	case Link:
		return sqlmini.Link(datalink.Link{Server: v.Server, Path: v.Path}), nil
	default:
		return sqlmini.Value{}, fmt.Errorf("datalinks: unsupported argument type %T", arg)
	}
}

// fromValue converts a SQL value to a Go value.
func fromValue(v sqlmini.Value) any {
	switch v.Kind() {
	case sqlmini.KindNull:
		return nil
	case sqlmini.KindInt:
		return v.I
	case sqlmini.KindFloat:
		return v.F
	case sqlmini.KindString:
		return v.S
	case sqlmini.KindBool:
		return v.B
	case sqlmini.KindTime:
		return v.T
	case sqlmini.KindLink:
		return Link{Server: v.L.Server, Path: v.L.Path}
	default:
		return v.String()
	}
}

func toValues(args []any) ([]sqlmini.Value, error) {
	vals := make([]sqlmini.Value, len(args))
	for i, a := range args {
		v, err := toValue(a)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

// Rows is a query result.
type Rows struct {
	Cols []string
	Data [][]any
}

// Exec runs a DDL/DML statement with ?-placeholders, returning affected rows.
func (s *System) Exec(sql string, args ...any) (int, error) {
	vals, err := toValues(args)
	if err != nil {
		return 0, err
	}
	return s.core.DB.Exec(sql, vals...)
}

// MustExec is Exec that panics on error (setup code, examples).
func (s *System) MustExec(sql string, args ...any) int {
	n, err := s.Exec(sql, args...)
	if err != nil {
		panic(err)
	}
	return n
}

// Query runs a SELECT with ?-placeholders.
func (s *System) Query(sql string, args ...any) (*Rows, error) {
	vals, err := toValues(args)
	if err != nil {
		return nil, err
	}
	rows, err := s.core.DB.Query(sql, vals...)
	if err != nil {
		return nil, err
	}
	out := &Rows{Cols: rows.Cols}
	for _, r := range rows.Data {
		converted := make([]any, len(r))
		for i, v := range r {
			converted[i] = fromValue(v)
		}
		out.Data = append(out.Data, converted)
	}
	return out, nil
}

// QueryString runs a SELECT expected to return one string value — the
// common shape for fetching tokenized URLs via DLURLCOMPLETE[WRITE].
func (s *System) QueryString(sql string, args ...any) (string, error) {
	rows, err := s.Query(sql, args...)
	if err != nil {
		return "", err
	}
	if len(rows.Data) != 1 || len(rows.Data[0]) != 1 {
		return "", fmt.Errorf("datalinks: expected one value, got %dx%d", len(rows.Data), len(rows.Cols))
	}
	str, ok := rows.Data[0][0].(string)
	if !ok {
		return "", fmt.Errorf("datalinks: value is %T, not string", rows.Data[0][0])
	}
	return str, nil
}

// Link is a DATALINK value: a reference to an external file.
type Link struct {
	Server string
	Path   string
}

// URL renders the link as a DATALINK URL.
func (l Link) URL() string { return datalink.Link{Server: l.Server, Path: l.Path}.URL() }

// StateID returns the host database state identifier (advances with every
// commit; archived file versions are tagged with it).
func (s *System) StateID() uint64 { return s.core.Engine.StateID() }

// RestoreToState rewinds the database to a past state identifier and
// restores every recovery-enabled linked file to the matching version —
// the coordinated point-in-time restore of §4.4.
func (s *System) RestoreToState(stateID uint64) error {
	if err := s.core.Engine.RestoreToState(stateID); err != nil {
		return err
	}
	s.core.DB = s.core.Engine.DB()
	return nil
}

// CrashAndRecoverServer simulates a crash and restart of one file server:
// in-flight updates roll back to their last committed versions, in-doubt
// sub-transactions resolve against the host database.
func (s *System) CrashAndRecoverServer(name string) (*dlfm.RecoveryReport, error) {
	return s.core.CrashAndRecoverServer(name)
}

// RecoverHost simulates a crash and restart of the host database machine.
func (s *System) RecoverHost() error { return s.core.RecoverHost() }

// Crash simulates a whole-process kill: all volatile state is dropped with
// no clean shutdown. Only the durable directories (RepoDir, ArchiveDir)
// survive; a later Open over the same directories cold-starts from them.
func (s *System) Crash() { s.core.Crash() }

// Recovery returns the cold-start recovery report of this file server, or
// nil if it started fresh (no prior durable repository state).
func (f *FileServer) Recovery() *dlfm.RecoveryReport { return f.inner.Recovery }

// Session returns an application identity with the given uid.
func (s *System) Session(uid int32) *Session {
	return &Session{inner: s.core.NewSession(fs.UID(uid))}
}

// Session is an application identity; files are opened through it with the
// standard file-system API semantics.
type Session struct {
	inner *core.Session
}

// OpenRead opens a linked file for reading. Pass the URL returned by
// DLURLCOMPLETE — it carries the read token when the mode requires one.
func (s *Session) OpenRead(url string) (*File, error) {
	f, err := s.inner.OpenRead(url)
	if err != nil {
		return nil, err
	}
	return &File{inner: f}, nil
}

// OpenWrite begins an in-place update transaction. Pass the URL returned by
// DLURLCOMPLETEWRITE.
func (s *Session) OpenWrite(url string) (*File, error) {
	f, err := s.inner.OpenWrite(url)
	if err != nil {
		return nil, err
	}
	return &File{inner: f}, nil
}

// BeginUserTxn groups several file updates under one user transaction.
func (s *Session) BeginUserTxn() *UserTxn {
	return &UserTxn{inner: s.inner.BeginUserTxn()}
}

// File is an open linked file. For write opens, Close commits the update
// transaction and Abort rolls it back to the last committed version.
type File struct {
	inner *core.File
}

// Read reads from the current offset; 0 bytes with nil error is EOF.
func (f *File) Read(p []byte) (int, error) { return f.inner.Read(p) }

// ReadAll reads the entire file.
func (f *File) ReadAll() ([]byte, error) { return f.inner.ReadAll() }

// Write writes at the current offset.
func (f *File) Write(p []byte) (int, error) { return f.inner.Write(p) }

// WriteAt writes at an absolute offset.
func (f *File) WriteAt(off int64, p []byte) (int, error) { return f.inner.WriteAt(off, p) }

// ReadAt reads at an absolute offset without moving the file offset.
func (f *File) ReadAt(off int64, p []byte) (int, error) { return f.inner.ReadAt(off, p) }

// WriteAll replaces the whole file content.
func (f *File) WriteAll(p []byte) error { return f.inner.WriteAll(p) }

// Truncate sets the file length.
func (f *File) Truncate(size int64) error { return f.inner.Truncate(size) }

// Size returns the current file size.
func (f *File) Size() (int64, error) {
	attr, err := f.inner.Stat()
	if err != nil {
		return 0, err
	}
	return attr.Size, nil
}

// Close ends the access; for write opens this commits the update.
func (f *File) Close() error { return f.inner.Close() }

// Abort rolls an in-place update back to the last committed version.
func (f *File) Abort() error { return f.inner.Abort() }

// UserTxn is a multi-file update transaction (§3.1's nested transactions).
type UserTxn struct {
	inner *core.UserTxn
}

// OpenWrite begins a file-update sub-transaction.
func (u *UserTxn) OpenWrite(url string) (*File, error) {
	f, err := u.inner.OpenWrite(url)
	if err != nil {
		return nil, err
	}
	return &File{inner: f}, nil
}

// Commit commits every sub-transaction in order.
func (u *UserTxn) Commit() error { return u.inner.Commit() }

// Abort rolls back every in-flight sub-transaction.
func (u *UserTxn) Abort() error { return u.inner.Abort() }

// RegisterContentHook derives user-metadata columns from file content on
// every committed update of files linked through (table, column): the
// returned column values are written in the same transaction as the
// automatic size/mtime update. This extends §4.3 of the paper to
// content-specific attributes — an item the paper lists as future research.
func (s *System) RegisterContentHook(table, column string, hook func(content []byte) map[string]any) {
	s.core.Engine.RegisterContentHook(table, column, func(content []byte) map[string]sqlmini.Value {
		out := make(map[string]sqlmini.Value)
		for col, v := range hook(content) {
			val, err := toValue(v)
			if err != nil {
				continue // unsupported type: skip the column
			}
			out[col] = val
		}
		return out
	})
}

// FileServer is an administrative handle on one file server.
type FileServer struct {
	inner *core.FileServer
}

// FileServer returns the named server's handle.
func (s *System) FileServer(name string) (*FileServer, error) {
	srv, err := s.core.Server(name)
	if err != nil {
		return nil, err
	}
	return &FileServer{inner: srv}, nil
}

// SeedFile creates (or replaces) a file owned by the given uid — setup
// convenience for populating a file server before linking.
func (f *FileServer) SeedFile(path string, content []byte, owner int32) error {
	dir := path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			dir = path[:i]
			break
		}
	}
	if dir != "" {
		if err := f.inner.Phys.MkdirAll(dir, fs.Cred{UID: fs.Root}, 0o777); err != nil {
			return err
		}
	}
	if err := f.inner.Phys.WriteFile(path, content); err != nil {
		return err
	}
	ino, err := f.inner.Phys.Lookup(path)
	if err != nil {
		return err
	}
	if err := f.inner.Phys.Chown(ino, fs.Cred{UID: fs.Root}, fs.UID(owner)); err != nil {
		return err
	}
	return f.inner.Phys.Chmod(ino, fs.Cred{UID: fs.UID(owner)}, 0o644)
}

// ReadFile reads a file's content directly (administrative access).
func (f *FileServer) ReadFile(path string) ([]byte, error) {
	return f.inner.Phys.ReadFile(path)
}

// ListDir lists a directory.
func (f *FileServer) ListDir(path string) ([]string, error) {
	return f.inner.Phys.ReadDir(path)
}

// LinkedFiles lists the paths currently linked on this server.
func (f *FileServer) LinkedFiles() []string { return f.inner.DLFM.LinkedFiles() }

// UpcallCount reports the total DLFS-to-DLFM upcalls so far.
func (f *FileServer) UpcallCount() int64 { return f.inner.Transport.Calls() }

// WaitArchives blocks until in-flight archive jobs complete. Archiving after
// a committed update is asynchronous (§4.4); call this before inspecting
// Versions in tests or scripts.
func (f *FileServer) WaitArchives() { f.inner.DLFM.WaitArchives() }

// Versions lists the archived version numbers of a linked file.
func (f *FileServer) Versions(path string) []int64 {
	var out []int64
	for _, e := range f.inner.Archive.Versions(f.inner.Name, path) {
		out = append(out, int64(e.Version))
	}
	return out
}

// Internal exposes the core file server (experiment harnesses).
func (f *FileServer) Internal() *core.FileServer { return f.inner }
