package datalinks_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"datalinks"
)

func openSys(t *testing.T) (*datalinks.System, *datalinks.FileServer) {
	t.Helper()
	sys, err := datalinks.Open(datalinks.Config{
		Servers:     []datalinks.ServerConfig{{Name: "fs1", OpenWait: 300 * time.Millisecond}},
		LockTimeout: time.Second,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(sys.Close)
	fsrv, err := sys.FileServer("fs1")
	if err != nil {
		t.Fatalf("file server: %v", err)
	}
	return sys, fsrv
}

func TestPublicAPIRoundTrip(t *testing.T) {
	sys, fsrv := openSys(t)
	if err := fsrv.SeedFile("/docs/a.txt", []byte("hello"), 100); err != nil {
		t.Fatalf("seed: %v", err)
	}
	sys.MustExec(`CREATE TABLE docs (id INT PRIMARY KEY, name VARCHAR, doc DATALINK MODE RDD RECOVERY YES, doc_size INT)`)
	if _, err := sys.Exec(`INSERT INTO docs (id, name, doc) VALUES (?, ?, DLVALUE(?))`,
		1, "a", "dlfs://fs1/docs/a.txt"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	// Typed query results.
	rows, err := sys.Query(`SELECT id, name, doc FROM docs`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if rows.Data[0][0].(int64) != 1 || rows.Data[0][1].(string) != "a" {
		t.Fatalf("row = %+v", rows.Data[0])
	}
	link, ok := rows.Data[0][2].(datalinks.Link)
	if !ok || link.Path != "/docs/a.txt" || link.URL() != "dlfs://fs1/docs/a.txt" {
		t.Fatalf("link cell = %+v", rows.Data[0][2])
	}
	// Token read.
	url, err := sys.QueryString(`SELECT DLURLCOMPLETE(doc) FROM docs WHERE id = 1`)
	if err != nil {
		t.Fatalf("token url: %v", err)
	}
	f, err := sys.Session(100).OpenRead(url)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	data, _ := f.ReadAll()
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if string(data) != "hello" {
		t.Fatalf("read = %q", data)
	}
}

func TestPublicAPIUpdateLifecycle(t *testing.T) {
	sys, fsrv := openSys(t)
	fsrv.SeedFile("/docs/b.txt", []byte("v0"), 100)
	sys.MustExec(`CREATE TABLE docs (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES, doc_size INT)`)
	sys.MustExec(`INSERT INTO docs (id, doc) VALUES (1, DLVALUE('dlfs://fs1/docs/b.txt'))`)

	url, _ := sys.QueryString(`SELECT DLURLCOMPLETEWRITE(doc) FROM docs WHERE id = 1`)
	sess := sys.Session(100)
	f, err := sess.OpenWrite(url)
	if err != nil {
		t.Fatalf("open write: %v", err)
	}
	if err := f.WriteAll([]byte("version one")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if sz, _ := f.Size(); sz != int64(len("version one")) {
		t.Fatalf("size = %d", sz)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	fsrv.WaitArchives()
	if vs := fsrv.Versions("/docs/b.txt"); len(vs) != 2 {
		t.Fatalf("versions = %v", vs)
	}
	rows, _ := sys.Query(`SELECT doc_size FROM docs WHERE id = 1`)
	if rows.Data[0][0].(int64) != int64(len("version one")) {
		t.Fatalf("metadata = %v", rows.Data[0][0])
	}
	// Abort path.
	url, _ = sys.QueryString(`SELECT DLURLCOMPLETEWRITE(doc) FROM docs WHERE id = 1`)
	f2, err := sess.OpenWrite(url)
	if err != nil {
		t.Fatalf("open 2: %v", err)
	}
	f2.WriteAll([]byte("garbage"))
	if err := f2.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	data, _ := fsrv.ReadFile("/docs/b.txt")
	if string(data) != "version one" {
		t.Fatalf("after abort = %q", data)
	}
}

func TestPublicAPIUserTxn(t *testing.T) {
	sys, fsrv := openSys(t)
	fsrv.SeedFile("/d/x.txt", []byte("x0"), 100)
	fsrv.SeedFile("/d/y.txt", []byte("y0"), 100)
	sys.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES)`)
	sys.MustExec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/x.txt')), (2, DLVALUE('dlfs://fs1/d/y.txt'))`)

	u := sys.Session(100).BeginUserTxn()
	u1, _ := sys.QueryString(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`)
	u2, _ := sys.QueryString(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 2`)
	f1, err := u.OpenWrite(u1)
	if err != nil {
		t.Fatalf("open 1: %v", err)
	}
	f2, err := u.OpenWrite(u2)
	if err != nil {
		t.Fatalf("open 2: %v", err)
	}
	f1.WriteAll([]byte("x1"))
	f2.WriteAll([]byte("y1"))
	if err := u.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	dx, _ := fsrv.ReadFile("/d/x.txt")
	dy, _ := fsrv.ReadFile("/d/y.txt")
	if string(dx) != "x1" || string(dy) != "y1" {
		t.Fatalf("contents = %q, %q", dx, dy)
	}
}

func TestPublicAPIRestore(t *testing.T) {
	sys, fsrv := openSys(t)
	fsrv.SeedFile("/d/f.txt", []byte("v0"), 100)
	sys.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES)`)
	sys.MustExec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.txt'))`)
	s0 := sys.StateID()

	url, _ := sys.QueryString(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`)
	f, _ := sys.Session(100).OpenWrite(url)
	f.WriteAll([]byte("v1"))
	f.Close()
	fsrv.WaitArchives()

	if err := sys.RestoreToState(s0); err != nil {
		t.Fatalf("restore: %v", err)
	}
	data, _ := fsrv.ReadFile("/d/f.txt")
	if string(data) != "v0" {
		t.Fatalf("after restore = %q", data)
	}
	// The restored system keeps working.
	rows, err := sys.Query(`SELECT COUNT(*) FROM t`)
	if err != nil || rows.Data[0][0].(int64) != 1 {
		t.Fatalf("restored query = %v, %v", rows, err)
	}
}

func TestPublicAPICrashRecovery(t *testing.T) {
	sys, fsrv := openSys(t)
	fsrv.SeedFile("/d/f.txt", []byte("v0"), 100)
	sys.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES)`)
	sys.MustExec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.txt'))`)
	url, _ := sys.QueryString(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`)
	f, err := sys.Session(100).OpenWrite(url)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f.WriteAll([]byte("never committed"))
	rep, err := sys.CrashAndRecoverServer("fs1")
	if err != nil {
		t.Fatalf("crash+recover: %v", err)
	}
	if len(rep.RestoredFiles) != 1 {
		t.Fatalf("restored = %v", rep.RestoredFiles)
	}
	fsrv2, _ := sys.FileServer("fs1")
	data, _ := fsrv2.ReadFile("/d/f.txt")
	if string(data) != "v0" {
		t.Fatalf("after recovery = %q", data)
	}
}

func TestPublicAPIErrors(t *testing.T) {
	sys, _ := openSys(t)
	if _, err := sys.FileServer("nope"); err == nil {
		t.Fatal("unknown server accepted")
	}
	if _, err := sys.Exec(`INSERT INTO missing VALUES (1)`); err == nil {
		t.Fatal("insert into missing table accepted")
	}
	if _, err := sys.Query(`SELECT`, 1); err == nil {
		t.Fatal("bad SQL accepted")
	}
	if _, err := sys.Exec(`CREATE TABLE t (id INT)`, struct{}{}); err == nil ||
		!strings.Contains(err.Error(), "unsupported argument") {
		t.Fatalf("bad arg = %v", err)
	}
	if _, err := sys.QueryString(`SELECT 1 FROM nothing`); err == nil {
		t.Fatal("QueryString over missing table accepted")
	}
	if _, err := sys.Session(1).OpenRead("not-a-url"); err == nil {
		t.Fatal("bad url accepted")
	}
	var e error = errors.New("x")
	_ = e
}
