package datalinks_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"datalinks"
)

// TestContentHookUserMetadata exercises the §4.3 future-work extension:
// content-derived user metadata updated in the same transaction as the
// committed file update.
func TestContentHookUserMetadata(t *testing.T) {
	sys, fsrv := openSys(t)
	fsrv.SeedFile("/pages/p.html", []byte("one two three"), 100)
	sys.MustExec(`CREATE TABLE pages (
		id INT PRIMARY KEY,
		doc DATALINK MODE RFD RECOVERY YES,
		doc_size INT,
		word_count INT,
		first_word VARCHAR
	)`)
	sys.MustExec(`INSERT INTO pages (id, doc) VALUES (1, DLVALUE('dlfs://fs1/pages/p.html'))`)

	sys.RegisterContentHook("pages", "doc", func(content []byte) map[string]any {
		words := strings.Fields(string(content))
		first := ""
		if len(words) > 0 {
			first = words[0]
		}
		return map[string]any{
			"word_count": len(words),
			"first_word": first,
		}
	})

	url, _ := sys.QueryString(`SELECT DLURLCOMPLETEWRITE(doc) FROM pages WHERE id = 1`)
	f, err := sys.Session(100).OpenWrite(url)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f.WriteAll([]byte("alpha beta gamma delta epsilon"))
	if err := f.Close(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	rows, err := sys.Query(`SELECT word_count, first_word, doc_size FROM pages WHERE id = 1`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	r := rows.Data[0]
	if r[0].(int64) != 5 || r[1].(string) != "alpha" {
		t.Fatalf("derived metadata = %+v", r)
	}
	if r[2].(int64) != int64(len("alpha beta gamma delta epsilon")) {
		t.Fatalf("size metadata = %v", r[2])
	}
}

// TestContentHookRollsBackWithUpdate verifies the derived metadata shares
// the update transaction's fate: a failed commit leaves it untouched.
func TestContentHookAbortLeavesMetadata(t *testing.T) {
	sys, fsrv := openSys(t)
	fsrv.SeedFile("/d/f.txt", []byte("v0"), 100)
	sys.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES, tag VARCHAR)`)
	sys.MustExec(`INSERT INTO t (id, doc) VALUES (1, DLVALUE('dlfs://fs1/d/f.txt'))`)
	sys.RegisterContentHook("t", "doc", func(content []byte) map[string]any {
		return map[string]any{"tag": "len=" + string(rune('0'+len(content)%10))}
	})
	url, _ := sys.QueryString(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`)
	f, _ := sys.Session(100).OpenWrite(url)
	f.WriteAll([]byte("doomed"))
	if err := f.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	rows, _ := sys.Query(`SELECT tag FROM t WHERE id = 1`)
	if rows.Data[0][0] != nil {
		t.Fatalf("aborted update wrote metadata: %v", rows.Data[0][0])
	}
}

func TestCheckOutManagerFacade(t *testing.T) {
	sys, fsrv := openSys(t)
	fsrv.SeedFile("/d/doc.txt", []byte("v0"), 100)
	m, err := sys.NewCheckOutManager("fs1")
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	tk, err := m.CheckOut(100, "dlfs://fs1/d/doc.txt")
	if err != nil {
		t.Fatalf("checkout: %v", err)
	}
	if m.Outstanding() != 1 {
		t.Fatalf("outstanding = %d", m.Outstanding())
	}
	if _, err := m.CheckOut(101, "dlfs://fs1/d/doc.txt"); err == nil {
		t.Fatal("second checkout should block")
	}
	tk.SetContent([]byte("edited"))
	if err := m.CheckIn(tk); err != nil {
		t.Fatalf("checkin: %v", err)
	}
	data, _ := fsrv.ReadFile("/d/doc.txt")
	if !bytes.Equal(data, []byte("edited")) {
		t.Fatalf("content = %q", data)
	}
}

func TestCopyUpdateManagerFacade(t *testing.T) {
	sys, fsrv := openSys(t)
	fsrv.SeedFile("/d/doc.txt", []byte("base"), 100)
	m, err := sys.NewCopyUpdateManager("fs1")
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	c1, _ := m.Copy("dlfs://fs1/d/doc.txt")
	c2, _ := m.Copy("dlfs://fs1/d/doc.txt")
	c1.SetContent([]byte("one"))
	c2.SetContent([]byte("two"))
	if err := m.CheckInBlind(c1); err != nil {
		t.Fatalf("checkin 1: %v", err)
	}
	if err := m.CheckInSafe(c2, func(base, mine, theirs []byte) ([]byte, error) {
		return append(append([]byte{}, theirs...), mine...), nil
	}); err != nil {
		t.Fatalf("merged checkin: %v", err)
	}
	data, _ := fsrv.ReadFile("/d/doc.txt")
	if string(data) != "onetwo" {
		t.Fatalf("merged = %q", data)
	}
	_, lost, merges, _ := m.Stats()
	if lost != 0 || merges != 1 {
		t.Fatalf("stats lost=%d merges=%d", lost, merges)
	}
}

func TestTCPUpcallsViaFacade(t *testing.T) {
	sys, err := datalinks.Open(datalinks.Config{
		Servers: []datalinks.ServerConfig{{Name: "fs1", TCPUpcalls: true, OpenWait: time.Second}},
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer sys.Close()
	fsrv, _ := sys.FileServer("fs1")
	fsrv.SeedFile("/d/f.txt", []byte("over tcp"), 100)
	sys.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES)`)
	sys.MustExec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.txt'))`)
	url, _ := sys.QueryString(`SELECT DLURLCOMPLETE(doc) FROM t WHERE id = 1`)
	f, err := sys.Session(100).OpenRead(url)
	if err != nil {
		t.Fatalf("open over tcp: %v", err)
	}
	data, _ := f.ReadAll()
	f.Close()
	if string(data) != "over tcp" {
		t.Fatalf("read = %q", data)
	}
}
